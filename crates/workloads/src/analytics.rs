//! The in-memory data-analytics workloads (§5.2): hash join, histogram,
//! and radix partitioning.

use crate::params::WorkloadParams;
use pei_cpu::trace::{Op, PhasedTrace};
use pei_mem::BackingStore;
use pei_types::{Addr, OperandValue, PimOpKind, BLOCK_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Keys per hash bucket (matches `pei_core::ops`'s HashProbe layout).
const BUCKET_KEYS: usize = 4;
/// Offset of the next-bucket pointer within a bucket.
const NEXT_OFFSET: u64 = (BLOCK_BYTES - 8) as u64;
/// Probe chains interleaved per thread (the software unrolling of §5.2).
const UNROLL: usize = 4;

#[derive(Debug, Clone, Copy)]
struct NativeBucket {
    keys: [u64; BUCKET_KEYS],
    next: Option<u32>,
}

/// Hash Join (HJ): builds a bucketized hash table from relation R, then
/// probes it with keys from relation S using the `pim.hprobe` operation,
/// chasing overflow chains through the returned next-bucket pointers.
/// Four probes are interleaved per thread so the out-of-order core can
/// overlap their PIM operations (§5.2).
#[derive(Debug)]
pub struct HashJoin {
    n_buckets_main: usize,
    buckets: Vec<NativeBucket>,
    bucket_base: Addr,
    probes: Vec<u64>,
    cursor: usize,
    threads: usize,
    budget: i64,
    chunk: usize,
    matches: u64,
    hops: u64,
    done: bool,
}

impl HashJoin {
    /// Builds a table of roughly `footprint` bytes and an (unbounded,
    /// budget-capped) probe stream.
    pub fn new(footprint: usize, params: &WorkloadParams) -> (Self, BackingStore) {
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x6a11);
        let n_buckets = (footprint / BLOCK_BYTES).max(16);
        // Load factor ~2 keys/bucket: some chains, mostly direct hits.
        let n_keys = n_buckets * 2;
        let mut buckets: Vec<NativeBucket> = (0..n_buckets)
            .map(|_| NativeBucket {
                keys: [0; BUCKET_KEYS],
                next: None,
            })
            .collect();
        let mut keys = Vec::with_capacity(n_keys);
        for _ in 0..n_keys {
            let key = rng.gen_range(1..u64::MAX);
            keys.push(key);
            let mut b = (key % n_buckets as u64) as usize;
            loop {
                if let Some(slot) = buckets[b].keys.iter().position(|&k| k == 0) {
                    buckets[b].keys[slot] = key;
                    break;
                }
                match buckets[b].next {
                    Some(nb) => b = nb as usize,
                    None => {
                        buckets.push(NativeBucket {
                            keys: [0; BUCKET_KEYS],
                            next: None,
                        });
                        let nb = (buckets.len() - 1) as u32;
                        buckets[b].next = Some(nb);
                        b = nb as usize;
                    }
                }
            }
        }
        // Materialize in simulated memory.
        let mut store = BackingStore::with_base(params.heap_base);
        let bucket_base = store.alloc((buckets.len() * BLOCK_BYTES) as u64, 64);
        for (i, b) in buckets.iter().enumerate() {
            let base = bucket_base.offset((i * BLOCK_BYTES) as u64);
            for (s, &k) in b.keys.iter().enumerate() {
                store.write_u64(base.offset(s as u64 * 8), k);
            }
            let next_addr = b
                .next
                .map_or(0, |nb| bucket_base.offset(nb as u64 * BLOCK_BYTES as u64).0);
            store.write_u64(base.offset(NEXT_OFFSET), next_addr);
        }
        // Probe stream: half hits, half misses, shuffled.
        let n_probes = (params.pei_budget.min(4_000_000) as usize).max(64);
        let probes: Vec<u64> = (0..n_probes)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    keys[rng.gen_range(0..keys.len())]
                } else {
                    rng.gen_range(1..u64::MAX)
                }
            })
            .collect();
        let hj = HashJoin {
            n_buckets_main: n_buckets,
            buckets,
            bucket_base,
            probes,
            cursor: 0,
            threads: params.threads,
            budget: params.pei_budget.min(i64::MAX as u64) as i64,
            chunk: (params.phase_chunk / 4).max(UNROLL * 4),
            matches: 0,
            hops: 0,
            done: false,
        };
        (hj, store)
    }

    fn bucket_addr(&self, b: usize) -> Addr {
        self.bucket_base.offset((b * BLOCK_BYTES) as u64)
    }

    /// Functionally walks the chain for `key`: `(bucket indexes, found)`.
    fn chain_of(&self, key: u64) -> (Vec<usize>, bool) {
        let mut b = (key % self.n_buckets_main as u64) as usize;
        let mut hops = Vec::new();
        loop {
            hops.push(b);
            if self.buckets[b].keys.contains(&key) {
                return (hops, true);
            }
            match self.buckets[b].next {
                Some(nb) => b = nb as usize,
                None => return (hops, false),
            }
        }
    }

    /// Reference probe outcome for validation: `(matches, chain hops)`.
    pub fn reference_counts(&self) -> (u64, u64) {
        self.probes
            .iter()
            .map(|&k| {
                let (hops, found) = self.chain_of(k);
                (u64::from(found), hops.len() as u64)
            })
            .fold((0, 0), |(m, h), (dm, dh)| (m + dm, h + dh))
    }

    /// Matches/hops the generator observed while emitting the trace.
    pub fn generated_counts(&self) -> (u64, u64) {
        (self.matches, self.hops)
    }
}

impl PhasedTrace for HashJoin {
    fn threads(&self) -> usize {
        self.threads
    }

    fn name(&self) -> &str {
        "HJ"
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        if self.done || self.budget <= 0 || self.cursor >= self.probes.len() {
            if self.done {
                return None;
            }
            self.done = true;
            return Some(vec![vec![Op::Pfence]; self.threads]);
        }
        let take = (self.chunk * self.threads).min(self.probes.len() - self.cursor);
        let slice = &self.probes[self.cursor..self.cursor + take];
        self.cursor += take;
        let mut phase: Vec<Vec<Op>> = (0..self.threads).map(|_| Vec::new()).collect();
        for (t, chunk) in slice.chunks(take.div_ceil(self.threads)).enumerate() {
            let ops = &mut phase[t.min(self.threads - 1)];
            let mut pei_index = 0usize; // per-thread emitted PEI counter
            for group in chunk.chunks(UNROLL) {
                // Functional chains for this group.
                let chains: Vec<(Vec<usize>, bool)> =
                    group.iter().map(|&k| self.chain_of(k)).collect();
                for (_, found) in &chains {
                    self.matches += u64::from(*found);
                }
                let max_hops = chains.iter().map(|(c, _)| c.len()).max().unwrap_or(0);
                // Track, per probe in the group, the global index of its
                // previously emitted hop so dependent hops carry exact
                // dep distances.
                let mut last_idx: Vec<Option<usize>> = vec![None; group.len()];
                for hop in 0..max_hops {
                    for (p, &key) in group.iter().enumerate() {
                        let (chain, _) = &chains[p];
                        if hop >= chain.len() {
                            continue;
                        }
                        self.hops += 1;
                        let dep = last_idx[p]
                            .map(|prev| (pei_index - prev) as u16)
                            .unwrap_or(0);
                        ops.push(Op::Compute(3)); // hash / pointer extract
                        ops.push(Op::Pei {
                            op: PimOpKind::HashProbe,
                            target: self.bucket_addr(chain[hop]),
                            input: OperandValue::U64(key),
                            dep_dist: dep,
                        });
                        last_idx[p] = Some(pei_index);
                        pei_index += 1;
                        self.budget -= 1;
                    }
                }
                ops.push(Op::Compute(UNROLL as u32 * 2)); // consume results
            }
        }
        Some(phase)
    }
}

/// Histogram (HG): builds a 256-bin histogram from 32-bit integers. The
/// `pim.histbin` operation computes the bin indexes of a whole cache
/// block (16 values) in memory, returning 16 bytes — the host then bumps
/// its (cache-resident) bins.
#[derive(Debug)]
pub struct HistogramW {
    data_base: Addr,
    hist_base: Addr,
    data: Vec<u32>,
    shift: u8,
    hist: [u64; 256],
    cursor_block: usize,
    passes_left: usize,
    partition_pass: bool,
    out_base: Option<Addr>,
    out_cursor: [usize; 256],
    bin_start: [usize; 256],
    threads: usize,
    budget: i64,
    chunk: usize,
    done: bool,
}

impl HistogramW {
    /// Plain histogram (HG): one pass over `footprint` bytes of data.
    pub fn histogram(footprint: usize, params: &WorkloadParams) -> (Self, BackingStore) {
        Self::build(footprint, params, 1, false)
    }

    /// Radix partitioning (RP): `passes` histogram passes over the same
    /// relation (the paper's repeated-query scenario, scaled down from
    /// 100) followed by the data-movement pass.
    pub fn radix_partition(
        footprint: usize,
        params: &WorkloadParams,
        passes: usize,
    ) -> (Self, BackingStore) {
        Self::build(footprint / 2, params, passes, true)
    }

    fn build(
        data_bytes: usize,
        params: &WorkloadParams,
        passes: usize,
        partition: bool,
    ) -> (Self, BackingStore) {
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x4157);
        let n_ints = (data_bytes / 4).next_multiple_of(16).max(16);
        let data: Vec<u32> = (0..n_ints).map(|_| rng.gen()).collect();
        let mut store = BackingStore::with_base(params.heap_base);
        let data_base = store.alloc(n_ints as u64 * 4, 64);
        for (i, &v) in data.iter().enumerate() {
            store.write_u32(data_base.offset(i as u64 * 4), v);
        }
        let hist_base = store.alloc(256 * 8, 64);
        let out_base = partition.then(|| store.alloc(n_ints as u64 * 4, 64));
        let shift = 24u8; // top byte of each word selects the bin
        let mut hist = [0u64; 256];
        for &v in &data {
            hist[((v >> shift) & 0xff) as usize] += 1;
        }
        let mut bin_start = [0usize; 256];
        let mut acc = 0usize;
        for b in 0..256 {
            bin_start[b] = acc;
            acc += hist[b] as usize;
        }
        let h = HistogramW {
            data_base,
            hist_base,
            data,
            shift,
            hist: [0; 256], // rebuilt during generation
            cursor_block: 0,
            passes_left: passes,
            partition_pass: partition,
            out_base,
            out_cursor: [0; 256],
            bin_start,
            threads: params.threads,
            budget: params.pei_budget.min(i64::MAX as u64) as i64,
            chunk: (params.phase_chunk / 40).max(4),
            done: false,
        };
        (h, store)
    }

    fn n_blocks(&self) -> usize {
        self.data.len() / 16
    }

    fn bin_of(&self, i: usize) -> usize {
        ((self.data[i] >> self.shift) & 0xff) as usize
    }

    /// Reference histogram of the input data.
    pub fn reference(&self) -> [u64; 256] {
        let mut h = [0u64; 256];
        for &v in &self.data {
            h[((v >> self.shift) & 0xff) as usize] += 1;
        }
        h
    }

    /// Histogram accumulated while generating (equals the reference once
    /// a full pass completed within budget).
    pub fn generated(&self) -> &[u64; 256] {
        &self.hist
    }
}

impl PhasedTrace for HistogramW {
    fn threads(&self) -> usize {
        self.threads
    }

    fn name(&self) -> &str {
        if self.partition_pass {
            "RP"
        } else {
            "HG"
        }
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        if self.done || self.budget <= 0 {
            return None;
        }
        if self.cursor_block >= self.n_blocks() {
            // Pass finished.
            self.cursor_block = 0;
            if self.passes_left > 0 {
                self.passes_left -= 1;
            }
            if self.passes_left == 0 {
                if self.partition_pass {
                    self.partition_pass = false; // run the move pass next
                } else {
                    self.done = true;
                    return None;
                }
            }
        }
        let blocks_per_thread = self.chunk;
        let take = (blocks_per_thread * self.threads).min(self.n_blocks() - self.cursor_block);
        let in_histogram_passes = self.passes_left > 0;
        let mut phase: Vec<Vec<Op>> = (0..self.threads).map(|_| Vec::new()).collect();
        for i in 0..take {
            let blk = self.cursor_block + i;
            let t = i % self.threads;
            let ops = &mut phase[t];
            let target = self.data_base.offset(blk as u64 * 64);
            ops.push(Op::Pei {
                op: PimOpKind::HistBin,
                target,
                input: OperandValue::from_bytes(&[self.shift]),
                dep_dist: 0,
            });
            self.budget -= 1;
            ops.push(Op::Compute(6)); // unpack the 16 bin indexes
            if in_histogram_passes {
                for e in 0..16 {
                    let bin = self.bin_of(blk * 16 + e);
                    self.hist[bin] += 1;
                    let addr = self.hist_base.offset(bin as u64 * 8);
                    ops.push(Op::load(addr));
                    ops.push(Op::store(addr));
                }
            } else {
                // Partition move pass: read the source block once, then
                // scatter its elements to their partitions.
                let out = self.out_base.expect("partition pass has an output");
                ops.push(Op::load(target));
                for e in 0..16 {
                    let bin = self.bin_of(blk * 16 + e);
                    let slot = self.bin_start[bin] + self.out_cursor[bin];
                    self.out_cursor[bin] += 1;
                    ops.push(Op::store(out.offset(slot as u64 * 4)));
                    ops.push(Op::Compute(1));
                }
            }
        }
        self.cursor_block += take;
        Some(phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(t: &mut dyn PhasedTrace) -> u64 {
        let mut peis = 0;
        while let Some(p) = t.next_phase() {
            for ops in &p {
                peis += ops.iter().filter(|o| matches!(o, Op::Pei { .. })).count() as u64;
            }
        }
        peis
    }

    #[test]
    fn hash_table_layout_round_trips_through_store() {
        let params = WorkloadParams::quick_test(2);
        let (hj, store) = HashJoin::new(16 * 1024, &params);
        // Every native key must be findable in the simulated memory via
        // the same chain walk the PIM op performs.
        for b in 0..hj.n_buckets_main.min(50) {
            let base = hj.bucket_addr(b);
            for s in 0..BUCKET_KEYS {
                assert_eq!(
                    store.read_u64(base.offset(s as u64 * 8)),
                    hj.buckets[b].keys[s]
                );
            }
            let next = store.read_u64(base.offset(NEXT_OFFSET));
            match hj.buckets[b].next {
                Some(nb) => assert_eq!(next, hj.bucket_addr(nb as usize).0),
                None => assert_eq!(next, 0),
            }
        }
    }

    #[test]
    fn hj_generated_counts_match_reference() {
        let mut params = WorkloadParams::quick_test(2);
        params.pei_budget = u64::MAX;
        let (mut hj, _store) = HashJoin::new(8 * 1024, &params);
        // Cap probes for test speed.
        hj.probes.truncate(500);
        let peis = drain(&mut hj);
        let (ref_matches, ref_hops) = hj.reference_counts();
        let (gen_matches, gen_hops) = hj.generated_counts();
        assert_eq!(gen_matches, ref_matches);
        assert_eq!(gen_hops, ref_hops);
        assert_eq!(peis, ref_hops, "one probe PEI per chain hop");
    }

    #[test]
    fn hj_dependent_hops_have_positive_dep() {
        let mut params = WorkloadParams::quick_test(1);
        params.pei_budget = u64::MAX;
        let (mut hj, _store) = HashJoin::new(4 * 1024, &params);
        hj.probes.truncate(200);
        let mut saw_dep = false;
        while let Some(p) = hj.next_phase() {
            for ops in &p {
                for o in ops {
                    if let Op::Pei { dep_dist, .. } = o {
                        if *dep_dist > 0 {
                            saw_dep = true;
                        }
                    }
                }
            }
        }
        assert!(saw_dep, "chains should produce dependent probes");
    }

    #[test]
    fn hg_histogram_matches_reference() {
        let params = WorkloadParams::quick_test(2);
        let (mut hg, _store) = HistogramW::histogram(8 * 1024, &params);
        let peis = drain(&mut hg);
        assert_eq!(hg.generated(), &hg.reference());
        assert_eq!(peis as usize, hg.n_blocks());
    }

    #[test]
    fn rp_emits_histogram_then_move_pass() {
        let params = WorkloadParams::quick_test(2);
        let (mut rp, _store) = HistogramW::radix_partition(8 * 1024, &params, 2);
        let mut stores_to_out = 0usize;
        let out_base = rp.out_base.unwrap();
        while let Some(p) = rp.next_phase() {
            for ops in &p {
                for o in ops {
                    if let Op::Store { addr } = o {
                        if addr.0 >= out_base.0 {
                            stores_to_out += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(stores_to_out, rp.data.len(), "every element moved once");
        // Every output slot used exactly once.
        let used: usize = rp.out_cursor.iter().sum();
        assert_eq!(used, rp.data.len());
    }
}
