//! Process-wide cache of generated workload inputs.
//!
//! One Figure-6 cell simulates the *same* input under four machine
//! configurations (Ideal-Host, Host-Only, PIM-Only, Locality-Aware), and
//! the five graph workloads of one input size all read the same
//! power-law graph (Table 3). Without sharing, every `Workload::build`
//! call regenerates that graph from scratch — an `O(E log E)` edge sort
//! that dominates setup time at paper scale. This module interns
//! generated graphs behind [`Arc`]s keyed by their full generation
//! parameters `(n, avg_deg, seed)`, so regeneration happens once per
//! distinct input no matter how many configurations, workloads, or
//! worker threads ask for it.
//!
//! Correctness relies on generation being a pure function of the key
//! (see [`Graph::power_law`]): a cache hit is observationally identical
//! to a fresh build, which is what keeps parallel experiment tables
//! byte-identical to serial ones (EXPERIMENTS.md, "Determinism
//! contract").
//!
//! Non-graph inputs (hash-join relations, point sets, ...) are generated
//! inline by their workload constructors in a single linear pass; they
//! are cheap relative to graph construction and stay uncached.
//!
//! # Examples
//!
//! ```
//! use pei_workloads::cache;
//!
//! let a = cache::shared_power_law(500, 8, 42);
//! let b = cache::shared_power_law(500, 8, 42);
//! assert!(std::sync::Arc::ptr_eq(&a, &b), "second lookup is a hit");
//! ```

use crate::graph::Graph;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Generation parameters that fully determine a power-law graph.
type GraphKey = (usize, usize, u64);

fn graph_cache() -> &'static Mutex<HashMap<GraphKey, Arc<Graph>>> {
    static CACHE: OnceLock<Mutex<HashMap<GraphKey, Arc<Graph>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the power-law graph for `(n, avg_deg, seed)`, generating it
/// on first request and sharing the same [`Arc`] thereafter.
///
/// Generation happens outside the cache lock, so two threads racing on
/// the same *new* key may both generate; determinism of
/// [`Graph::power_law`] makes either result identical and the first
/// insert wins.
pub fn shared_power_law(n: usize, avg_deg: usize, seed: u64) -> Arc<Graph> {
    let key = (n, avg_deg, seed);
    if let Some(g) = graph_cache().lock().unwrap().get(&key) {
        return Arc::clone(g);
    }
    let fresh = Arc::new(Graph::power_law(n, avg_deg, seed));
    Arc::clone(
        graph_cache()
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| fresh),
    )
}

/// Drops every cached input, releasing the memory. Entries regenerate
/// on demand; only peak memory, never results, is affected.
pub fn clear() {
    graph_cache().lock().unwrap().clear();
}

/// Number of distinct inputs currently interned.
pub fn len() -> usize {
    graph_cache().lock().unwrap().len()
}

/// Whether the cache is empty.
pub fn is_empty() -> bool {
    len() == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_same_allocation() {
        let a = shared_power_law(100, 4, 0xdead);
        let b = shared_power_law(100, 4, 0xdead);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.n, 100);
    }

    #[test]
    fn distinct_keys_distinct_graphs() {
        let a = shared_power_law(100, 4, 1);
        let b = shared_power_law(100, 4, 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.adj, b.adj);
    }

    #[test]
    fn cached_equals_fresh() {
        let cached = shared_power_law(200, 6, 77);
        let fresh = Graph::power_law(200, 6, 77);
        assert_eq!(cached.xadj, fresh.xadj);
        assert_eq!(cached.adj, fresh.adj);
    }

    #[test]
    fn shared_from_many_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| shared_power_law(300, 5, 0xbeef)))
            .collect();
        let graphs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for g in &graphs[1..] {
            assert_eq!(g.adj, graphs[0].adj);
        }
    }
}
