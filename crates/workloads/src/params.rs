//! Workload sizing parameters.
//!
//! The paper evaluates three input sets per workload (Table 3), chosen so
//! that "small" fits comfortably in the 16 MB L3, "large" dwarfs it, and
//! "medium" sits near the boundary. We parameterize footprints relative
//! to the simulated machine's L3 capacity, so the same ratios hold on
//! both the paper-scale and the scaled-down default machine.

/// Input-set size class (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSize {
    /// Fits comfortably in the L3 (≈ L3/4 of PEI-visible data).
    Small,
    /// Around the L3 capacity (≈ 2 × L3): partially cacheable, where the
    /// power-law skew makes locality per-block.
    Medium,
    /// Far beyond the L3 (≈ 16 × L3).
    Large,
}

impl InputSize {
    /// All sizes, in Table 3 order.
    pub const ALL: [InputSize; 3] = [InputSize::Small, InputSize::Medium, InputSize::Large];

    /// Target footprint of the PEI-visible data in bytes, relative to L3
    /// capacity.
    pub fn footprint(self, l3_bytes: usize) -> usize {
        match self {
            InputSize::Small => l3_bytes / 4,
            InputSize::Medium => l3_bytes * 2,
            InputSize::Large => l3_bytes * 16,
        }
    }

    /// Short label for report rows.
    pub fn label(self) -> &'static str {
        match self {
            InputSize::Small => "S",
            InputSize::Medium => "M",
            InputSize::Large => "L",
        }
    }
}

impl std::fmt::Display for InputSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InputSize::Small => "small",
            InputSize::Medium => "medium",
            InputSize::Large => "large",
        })
    }
}

/// Parameters shared by all workload generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Threads to spawn (= cores the workload runs on).
    pub threads: usize,
    /// L3 capacity of the target machine (drives input sizing).
    pub l3_bytes: usize,
    /// Approximate PEI budget per run — the analog of the paper's fixed
    /// two-billion-instruction simulation window. Generation stops at the
    /// next phase boundary once the budget is spent, so runtime stays
    /// bounded across input sizes.
    pub pei_budget: u64,
    /// Maximum ops per thread per phase (keeps per-phase memory bounded).
    pub phase_chunk: usize,
    /// RNG seed (runs are bit-reproducible given the same seed).
    pub seed: u64,
    /// Simulated heap base for this workload's data (multiprogrammed
    /// mixes give each co-running workload a disjoint base).
    pub heap_base: u64,
}

impl WorkloadParams {
    /// Default heap base (256 MiB).
    pub const DEFAULT_HEAP_BASE: u64 = 0x1000_0000;
}

impl WorkloadParams {
    /// Defaults for the scaled machine: sized against a 1 MB L3.
    pub fn scaled(threads: usize) -> Self {
        WorkloadParams {
            threads,
            l3_bytes: 1024 * 1024,
            pei_budget: 120_000,
            phase_chunk: 8_192,
            seed: 0x5eed,
            heap_base: Self::DEFAULT_HEAP_BASE,
        }
    }

    /// Tiny inputs with a generous budget: workloads run to completion,
    /// which the functional-validation tests rely on.
    pub fn quick_test(threads: usize) -> Self {
        WorkloadParams {
            threads,
            l3_bytes: 64 * 1024,
            pei_budget: u64::MAX,
            phase_chunk: 4_096,
            seed: 7,
            heap_base: Self::DEFAULT_HEAP_BASE,
        }
    }
}

/// Splits `n` items into `threads` contiguous ranges (the static
/// scheduling of a `parallel_for`).
pub fn partition(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let per = n.div_ceil(threads.max(1));
    (0..threads)
        .map(|t| (t * per).min(n)..((t + 1) * per).min(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprints_are_ordered() {
        let l3 = 1 << 20;
        assert!(InputSize::Small.footprint(l3) < l3);
        assert!(InputSize::Medium.footprint(l3) > l3);
        assert!(InputSize::Large.footprint(l3) >= 8 * l3);
    }

    #[test]
    fn partition_covers_everything_disjointly() {
        for (n, t) in [(10, 3), (100, 16), (5, 8), (0, 4), (7, 1)] {
            let parts = partition(n, t);
            assert_eq!(parts.len(), t);
            let total: usize = parts.iter().map(|r| r.len()).sum();
            assert_eq!(total, n);
            let mut next = 0;
            for r in &parts {
                assert!(r.start <= r.end);
                assert_eq!(r.start, next.min(n));
                next = r.end;
            }
        }
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(InputSize::Small.label(), "S");
        assert_eq!(InputSize::Large.to_string(), "large");
    }
}
