//! Synthetic power-law graphs and their simulated-memory layout.
//!
//! The paper evaluates on nine real-world graphs (62 K–5 M vertices) from
//! SNAP and LAW with power-law degree distributions. We generate synthetic
//! graphs with the same property — a heavy-tailed in-degree distribution —
//! because that skew is exactly what drives the paper's per-block locality
//! results (§7.1: high-degree vertices receive most updates and become
//! cache-resident). Vertex ids are randomly permuted so hot vertices don't
//! artificially cluster into a few cache blocks.

use pei_mem::BackingStore;
use pei_types::Addr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed graph in CSR form.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Vertex count.
    pub n: usize,
    /// CSR row offsets (`n + 1` entries).
    pub xadj: Vec<u32>,
    /// CSR column indices (destination vertices).
    pub adj: Vec<u32>,
}

impl Graph {
    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.adj.len()
    }

    /// Successors of `v`.
    pub fn succ(&self, v: usize) -> &[u32] {
        &self.adj[self.xadj[v] as usize..self.xadj[v + 1] as usize]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        (self.xadj[v + 1] - self.xadj[v]) as usize
    }

    /// Generates a power-law graph with `n` vertices and roughly
    /// `n * avg_deg` edges.
    ///
    /// Destinations are drawn from a Zipf-like distribution
    /// (`dst ∝ u^alpha` over a random permutation), producing the
    /// heavy-tailed in-degree skew of social graphs; sources are uniform.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn power_law(n: usize, avg_deg: usize, seed: u64) -> Graph {
        assert!(n > 0, "graph must have vertices");
        let mut rng = StdRng::seed_from_u64(seed);
        // Random permutation: vertex popularity rank -> vertex id.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let m = n * avg_deg;
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
        for _ in 0..m {
            let src = rng.gen_range(0..n as u32);
            // u^3 concentrates mass on low ranks: P(rank r) ~ r^(-2/3)
            // tail, a recognizable power law.
            let u: f64 = rng.gen_range(0.0f64..1.0);
            let rank = ((u * u * u) * n as f64) as usize;
            let dst = perm[rank.min(n - 1)];
            if src != dst {
                edges.push((src, dst));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut xadj = vec![0u32; n + 1];
        for &(s, _) in &edges {
            xadj[s as usize + 1] += 1;
        }
        for i in 0..n {
            xadj[i + 1] += xadj[i];
        }
        let adj = edges.into_iter().map(|(_, d)| d).collect();
        Graph { n, xadj, adj }
    }
}

/// Addresses of a graph's data structures in simulated memory: the CSR
/// arrays plus `fields` per-vertex 8-byte value arrays (pagerank, levels,
/// labels, counters, ...).
#[derive(Debug, Clone)]
pub struct GraphLayout {
    /// Base of the CSR offset array (4 B per entry).
    pub xadj: Addr,
    /// Base of the CSR adjacency array (4 B per entry).
    pub adj: Addr,
    /// Bases of the per-vertex 8-byte field arrays.
    pub fields: Vec<Addr>,
}

impl GraphLayout {
    /// Reserves simulated address space for `g` with `fields` per-vertex
    /// arrays. Only PEI-visible field contents need to be written by the
    /// caller; the CSR arrays exist for address generation (their traffic
    /// is timing-only).
    pub fn alloc(store: &mut BackingStore, g: &Graph, fields: usize) -> GraphLayout {
        let xadj = store.alloc((g.n as u64 + 1) * 4, 64);
        let adj = store.alloc(g.edges() as u64 * 4, 64);
        let fields = (0..fields)
            .map(|_| store.alloc(g.n as u64 * 8, 64))
            .collect();
        GraphLayout { xadj, adj, fields }
    }

    /// Address of `xadj[v]`.
    pub fn xadj_addr(&self, v: usize) -> Addr {
        self.xadj.offset(v as u64 * 4)
    }

    /// Address of `adj[e]`.
    pub fn adj_addr(&self, e: usize) -> Addr {
        self.adj.offset(e as u64 * 4)
    }

    /// Address of field `f` of vertex `v`.
    pub fn field_addr(&self, f: usize, v: usize) -> Addr {
        self.fields[f].offset(v as u64 * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_is_well_formed() {
        let g = Graph::power_law(1000, 8, 42);
        assert_eq!(g.xadj.len(), g.n + 1);
        assert_eq!(g.xadj[0], 0);
        assert_eq!(*g.xadj.last().unwrap() as usize, g.edges());
        assert!(g.xadj.windows(2).all(|w| w[0] <= w[1]));
        assert!(g.adj.iter().all(|&d| (d as usize) < g.n));
        assert!(g.edges() > 4 * g.n, "should be reasonably dense");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = Graph::power_law(20_000, 10, 1);
        let mut indeg = vec![0u32; g.n];
        for &d in &g.adj {
            indeg[d as usize] += 1;
        }
        indeg.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = indeg.iter().map(|&x| x as u64).sum();
        let top1pct: u64 = indeg[..g.n / 100].iter().map(|&x| x as u64).sum();
        // Power-law: the hottest 1 % of vertices receive a large share of
        // all edges (uniform would give ~1 %).
        assert!(
            top1pct as f64 / total as f64 > 0.15,
            "top-1% share = {}",
            top1pct as f64 / total as f64
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Graph::power_law(500, 6, 9);
        let b = Graph::power_law(500, 6, 9);
        assert_eq!(a.adj, b.adj);
        assert_eq!(a.xadj, b.xadj);
        let c = Graph::power_law(500, 6, 10);
        assert_ne!(a.adj, c.adj);
    }

    #[test]
    fn succ_matches_csr() {
        let g = Graph::power_law(100, 4, 3);
        let mut count = 0;
        for v in 0..g.n {
            count += g.succ(v).len();
            assert_eq!(g.succ(v).len(), g.out_degree(v));
        }
        assert_eq!(count, g.edges());
    }

    #[test]
    fn layout_addresses_are_disjoint() {
        let mut store = BackingStore::new();
        let g = Graph::power_law(100, 4, 3);
        let l = GraphLayout::alloc(&mut store, &g, 2);
        let f0 = l.field_addr(0, 0).0;
        let f0_end = l.field_addr(0, 99).0 + 8;
        let f1 = l.field_addr(1, 0).0;
        assert!(f0_end <= f1, "field arrays must not overlap");
        assert!(l.xadj.0 < l.adj.0);
        assert_eq!(l.field_addr(0, 5).0 - f0, 40);
    }
}
