//! The ten data-intensive workloads of the paper's case study (§5),
//! implemented as functional-first trace generators.
//!
//! Each workload:
//!
//! 1. builds its input data (synthetic power-law graphs standing in for
//!    the SNAP/LAW datasets, DB relations, point sets — see DESIGN.md §2
//!    for the substitution rationale),
//! 2. writes the PEI-visible data structures into a [`pei_mem::BackingStore`]
//!    whose clone becomes the simulated machine's memory, and
//! 3. implements [`pei_cpu::trace::PhasedTrace`], *functionally executing*
//!    the algorithm while emitting per-thread op streams (loads, stores,
//!    compute, PEIs, pfences) for the timing simulator to replay.
//!
//! | Workload | Domain | PIM operation (Table 1) |
//! |----------|--------|--------------------------|
//! | ATF | graph | 8-byte integer increment |
//! | BFS, SP, WCC | graph | 8-byte integer min |
//! | PR | graph | double FP add |
//! | HJ | analytics | hash-table probe |
//! | HG, RP | analytics | histogram bin index |
//! | SC | ML | Euclidean distance |
//! | SVM | ML | dot product |
//!
//! # Examples
//!
//! ```
//! use pei_workloads::{Workload, InputSize, WorkloadParams};
//!
//! let params = WorkloadParams::quick_test(2);
//! let (store, trace) = Workload::Atf.build(InputSize::Small, &params);
//! assert_eq!(trace.threads(), 2);
//! # let _ = store;
//! ```
//!
//! This crate's place in the workspace is mapped in DESIGN.md §5.

#![warn(missing_docs)]

pub mod analytics;
pub mod cache;
pub mod graph;
pub mod graph_kernels;
pub mod ml;
pub mod params;
pub mod workload;

pub use graph::Graph;
pub use params::{InputSize, WorkloadParams};
pub use workload::Workload;
