//! The five large-scale graph-processing workloads (§5.1): ATF, BFS, PR,
//! SP, WCC.
//!
//! Each kernel executes functionally during trace generation (frontiers,
//! convergence and PEI effects are computed on native state) while
//! emitting the per-thread op streams the timing simulator replays.
//! PEI-visible arrays are also materialized in the backing store so the
//! simulated PCUs compute real values; for kernels whose arrays are
//! updated *only* by PEIs (ATF, BFS, SP, WCC) the simulator's final
//! memory is bit-comparable with the reference run.

use crate::graph::{Graph, GraphLayout};
use crate::params::{partition, WorkloadParams};
use pei_cpu::trace::{Op, PhasedTrace};
use pei_mem::BackingStore;
use pei_types::{OperandValue, PimOpKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Emits the ops for scanning vertex `v`'s out-edges: the `xadj` load,
/// adjacency-block loads (one per 16 edges), and a per-edge callback.
fn emit_vertex_scan(
    layout: &GraphLayout,
    g: &Graph,
    v: usize,
    ops: &mut Vec<Op>,
    mut per_edge: impl FnMut(u32, &mut Vec<Op>),
) {
    ops.push(Op::load(layout.xadj_addr(v)));
    ops.push(Op::Compute(2));
    let start = g.xadj[v] as usize;
    let end = g.xadj[v + 1] as usize;
    for e in start..end {
        if e == start || e % 16 == 0 {
            ops.push(Op::load(layout.adj_addr(e)));
        }
        per_edge(g.adj[e], ops);
    }
}

/// Per-thread progress over statically partitioned vertex ranges.
#[derive(Debug)]
struct Chunker {
    ranges: Vec<std::ops::Range<usize>>,
    cursors: Vec<usize>,
}

impl Chunker {
    fn new(n: usize, threads: usize) -> Self {
        let ranges = partition(n, threads);
        let cursors = ranges.iter().map(|r| r.start).collect();
        Chunker { ranges, cursors }
    }

    fn reset(&mut self) {
        for (c, r) in self.cursors.iter_mut().zip(&self.ranges) {
            *c = r.start;
        }
    }

    /// Next per-thread vertex subranges of at most `max` vertices each;
    /// `None` when every thread has finished its range.
    fn next(&mut self, max: usize) -> Option<Vec<std::ops::Range<usize>>> {
        if self
            .cursors
            .iter()
            .zip(&self.ranges)
            .all(|(c, r)| *c >= r.end)
        {
            return None;
        }
        Some(
            self.cursors
                .iter_mut()
                .zip(&self.ranges)
                .map(|(c, r)| {
                    let s = *c;
                    let e = (s + max).min(r.end);
                    *c = e;
                    s..e
                })
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------
// ATF — Average Teenage Follower
// ---------------------------------------------------------------------

/// Average Teenage Follower: counts, for every vertex, its teenage
/// followers by incrementing `followers[w]` for each successor `w` of a
/// teen vertex — one `pim.inc8` per edge from a teen.
#[derive(Debug)]
pub struct Atf {
    g: Arc<Graph>,
    layout: GraphLayout,
    teen: Vec<bool>,
    followers: Vec<u64>,
    threads: usize,
    chunker: Chunker,
    budget: i64,
    chunk: usize,
    fence_emitted: bool,
}

impl Atf {
    /// Field index of the follower-count array.
    pub const FIELD_FOLLOWERS: usize = 0;

    /// Builds the workload over `g`, returning the generator and the
    /// initial simulated memory.
    pub fn new(g: impl Into<Arc<Graph>>, params: &WorkloadParams) -> (Self, BackingStore) {
        let g = g.into();
        let mut store = BackingStore::with_base(params.heap_base);
        let layout = GraphLayout::alloc(&mut store, &g, 1);
        // Follower counters start at zero (already zeroed memory).
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0xa7f);
        let teen: Vec<bool> = (0..g.n).map(|_| rng.gen_bool(0.1)).collect();
        let n = g.n;
        let atf = Atf {
            g,
            layout,
            teen,
            followers: vec![0; n],
            threads: params.threads,
            chunker: Chunker::new(n, params.threads),
            budget: params.pei_budget.min(i64::MAX as u64) as i64,
            chunk: (params.phase_chunk / 8).max(16),
            fence_emitted: false,
        };
        (atf, store)
    }

    /// Reference result: follower counts from a sequential run.
    pub fn reference(&self) -> &[u64] {
        &self.followers
    }

    /// Address of `followers[v]` (for validation against the sim store).
    pub fn followers_addr(&self, v: usize) -> pei_types::Addr {
        self.layout.field_addr(Self::FIELD_FOLLOWERS, v)
    }
}

impl PhasedTrace for Atf {
    fn threads(&self) -> usize {
        self.threads
    }

    fn name(&self) -> &str {
        "ATF"
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        if self.budget <= 0 || self.chunker.next(0).is_none() {
            if self.fence_emitted {
                return None;
            }
            self.fence_emitted = true;
            return Some(vec![vec![Op::Pfence]; self.threads]);
        }
        let ranges = self.chunker.next(self.chunk)?;
        let mut phase = Vec::with_capacity(self.threads);
        for r in ranges {
            let mut ops = Vec::new();
            for v in r {
                ops.push(Op::Compute(2));
                if !self.teen[v] {
                    continue;
                }
                let (layout, g) = (&self.layout, &self.g);
                let followers = &mut self.followers;
                let mut emitted = 0i64;
                emit_vertex_scan(layout, g, v, &mut ops, |w, ops| {
                    followers[w as usize] += 1;
                    ops.push(Op::pei(
                        PimOpKind::IncU64,
                        layout.field_addr(Self::FIELD_FOLLOWERS, w as usize),
                        OperandValue::None,
                    ));
                    ops.push(Op::Compute(2));
                    emitted += 1;
                });
                self.budget -= emitted;
            }
            phase.push(ops);
        }
        Some(phase)
    }
}

// ---------------------------------------------------------------------
// PR — PageRank (Figure 1 of the paper)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PrStage {
    Update,
    Fence,
    Recompute,
    Done,
}

/// PageRank: `pim.fadd` propagates `0.85 * pagerank[v] / out_degree(v)`
/// to every successor's `next_pagerank`, with a pfence before the
/// recompute loop (lines 10 and 13–18 of Figure 1).
#[derive(Debug)]
pub struct Pagerank {
    g: Arc<Graph>,
    layout: GraphLayout,
    pagerank: Vec<f64>,
    next_pagerank: Vec<f64>,
    threads: usize,
    chunker: Chunker,
    stage: PrStage,
    iter: usize,
    max_iter: usize,
    budget: i64,
    chunk: usize,
}

impl Pagerank {
    /// Field index of the `pagerank` array.
    pub const FIELD_PR: usize = 0;
    /// Field index of the `next_pagerank` array (the PEI target).
    pub const FIELD_NEXT: usize = 1;

    /// Builds the workload with `max_iter` PageRank iterations.
    pub fn new(
        g: impl Into<Arc<Graph>>,
        params: &WorkloadParams,
        max_iter: usize,
    ) -> (Self, BackingStore) {
        let g = g.into();
        let mut store = BackingStore::with_base(params.heap_base);
        let layout = GraphLayout::alloc(&mut store, &g, 2);
        let n = g.n;
        let init = 1.0 / n as f64;
        let base = 0.15 / n as f64;
        for v in 0..n {
            store.write_f64(layout.field_addr(Self::FIELD_NEXT, v), base);
        }
        let pr = Pagerank {
            g,
            layout,
            pagerank: vec![init; n],
            next_pagerank: vec![base; n],
            threads: params.threads,
            chunker: Chunker::new(n, params.threads),
            stage: PrStage::Update,
            iter: 0,
            max_iter,
            budget: params.pei_budget.min(i64::MAX as u64) as i64,
            chunk: (params.phase_chunk / 8).max(16),
        };
        (pr, store)
    }

    /// Reference pagerank values after the generated iterations.
    pub fn reference(&self) -> &[f64] {
        &self.pagerank
    }

    /// Address of `next_pagerank[v]`.
    pub fn next_addr(&self, v: usize) -> pei_types::Addr {
        self.layout.field_addr(Self::FIELD_NEXT, v)
    }
}

impl PhasedTrace for Pagerank {
    fn threads(&self) -> usize {
        self.threads
    }

    fn name(&self) -> &str {
        "PR"
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        loop {
            match self.stage {
                PrStage::Done => return None,
                PrStage::Update => {
                    let ranges = if self.budget > 0 {
                        self.chunker.next(self.chunk)
                    } else {
                        None // budget window ends mid-iteration, like the
                             // paper's fixed instruction window
                    };
                    let Some(ranges) = ranges else {
                        self.stage = PrStage::Fence;
                        continue;
                    };
                    let mut phase = Vec::with_capacity(self.threads);
                    for r in ranges {
                        let mut ops = Vec::new();
                        for v in r {
                            ops.push(Op::load(self.layout.field_addr(Self::FIELD_PR, v)));
                            ops.push(Op::Compute(6)); // delta = 0.85*pr/deg
                            let deg = self.g.out_degree(v);
                            if deg == 0 {
                                continue;
                            }
                            let delta = 0.85 * self.pagerank[v] / deg as f64;
                            let (layout, g) = (&self.layout, &self.g);
                            let next = &mut self.next_pagerank;
                            let mut emitted = 0i64;
                            emit_vertex_scan(layout, g, v, &mut ops, |w, ops| {
                                next[w as usize] += delta;
                                ops.push(Op::pei(
                                    PimOpKind::AddF64,
                                    layout.field_addr(Self::FIELD_NEXT, w as usize),
                                    OperandValue::F64(delta),
                                ));
                                ops.push(Op::Compute(1));
                                emitted += 1;
                            });
                            self.budget -= emitted;
                        }
                        phase.push(ops);
                    }
                    return Some(phase);
                }
                PrStage::Fence => {
                    // If the budget ran out mid-iteration, fence and stop
                    // (the paper's simulation window also ends mid-run).
                    self.stage = if self.budget > 0 {
                        PrStage::Recompute
                    } else {
                        PrStage::Done
                    };
                    self.chunker.reset();
                    return Some(vec![vec![Op::Pfence]; self.threads]);
                }
                PrStage::Recompute => {
                    let Some(ranges) = self.chunker.next(self.chunk) else {
                        // Iteration finished.
                        self.iter += 1;
                        self.chunker.reset();
                        if self.iter >= self.max_iter || self.budget <= 0 {
                            return None;
                        }
                        self.stage = PrStage::Update;
                        continue;
                    };
                    let base = 0.15 / self.g.n as f64;
                    let mut phase = Vec::with_capacity(self.threads);
                    for r in ranges {
                        let mut ops = Vec::new();
                        for v in r {
                            // diff += |next - pr|; pr = next; next = base
                            ops.push(Op::load(self.layout.field_addr(Self::FIELD_NEXT, v)));
                            ops.push(Op::Compute(4));
                            ops.push(Op::store(self.layout.field_addr(Self::FIELD_PR, v)));
                            ops.push(Op::store(self.layout.field_addr(Self::FIELD_NEXT, v)));
                            self.pagerank[v] = self.next_pagerank[v];
                            self.next_pagerank[v] = base;
                        }
                        phase.push(ops);
                    }
                    return Some(phase);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Frontier kernels — BFS and SP (Bellman-Ford) share their machinery
// ---------------------------------------------------------------------

/// Breadth-first search (level-synchronous) or single-source shortest
/// path (parallel Bellman-Ford), both built on `pim.min8` relaxations of
/// a per-vertex distance field over an active frontier.
#[derive(Debug)]
pub struct FrontierMin {
    g: Arc<Graph>,
    layout: GraphLayout,
    dist: Vec<u64>,
    frontier: Vec<u32>,
    next_frontier: Vec<u32>,
    frontier_pos: usize,
    threads: usize,
    budget: i64,
    chunk: usize,
    weighted: bool,
    name: &'static str,
    fence_pending: bool,
    done: bool,
}

impl FrontierMin {
    /// Field index of the distance/level array.
    pub const FIELD_DIST: usize = 0;

    /// Level-synchronous BFS from `src`.
    pub fn bfs(
        g: impl Into<Arc<Graph>>,
        params: &WorkloadParams,
        src: usize,
    ) -> (Self, BackingStore) {
        Self::build(g, params, src, false, "BFS")
    }

    /// Parallel Bellman-Ford from `src` with deterministic edge weights
    /// `1 + (v + w) % 16`.
    pub fn sssp(
        g: impl Into<Arc<Graph>>,
        params: &WorkloadParams,
        src: usize,
    ) -> (Self, BackingStore) {
        Self::build(g, params, src, true, "SP")
    }

    fn build(
        g: impl Into<Arc<Graph>>,
        params: &WorkloadParams,
        src: usize,
        weighted: bool,
        name: &'static str,
    ) -> (Self, BackingStore) {
        let g = g.into();
        let mut store = BackingStore::with_base(params.heap_base);
        let layout = GraphLayout::alloc(&mut store, &g, 1);
        let n = g.n;
        let mut dist = vec![u64::MAX; n];
        dist[src] = 0;
        for (v, d) in dist.iter().enumerate() {
            store.write_u64(layout.field_addr(Self::FIELD_DIST, v), *d);
        }
        let k = FrontierMin {
            g,
            layout,
            dist,
            frontier: vec![src as u32],
            next_frontier: Vec::new(),
            frontier_pos: 0,
            threads: params.threads,
            budget: params.pei_budget.min(i64::MAX as u64) as i64,
            chunk: (params.phase_chunk / 8).max(16),
            weighted,
            name,
            fence_pending: false,
            done: false,
        };
        (k, store)
    }

    #[cfg(test)]
    fn weight(&self, v: usize, w: u32) -> u64 {
        if self.weighted {
            1 + ((v as u64 + w as u64) % 16)
        } else {
            1
        }
    }

    /// Reference distances/levels.
    pub fn reference(&self) -> &[u64] {
        &self.dist
    }

    /// Address of `dist[v]`.
    pub fn dist_addr(&self, v: usize) -> pei_types::Addr {
        self.layout.field_addr(Self::FIELD_DIST, v)
    }
}

impl PhasedTrace for FrontierMin {
    fn threads(&self) -> usize {
        self.threads
    }

    fn name(&self) -> &str {
        self.name
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        if self.done {
            return None;
        }
        if self.fence_pending {
            self.fence_pending = false;
            // Advance to the next level.
            self.frontier = std::mem::take(&mut self.next_frontier);
            self.frontier.sort_unstable();
            self.frontier.dedup();
            self.frontier_pos = 0;
            if self.frontier.is_empty() || self.budget <= 0 {
                self.done = true;
            }
            return Some(vec![vec![Op::Pfence]; self.threads]);
        }
        // Process a chunk of the current frontier, round-robin across
        // threads. A spent budget truncates the remaining frontier.
        if self.budget <= 0 {
            self.frontier_pos = self.frontier.len();
        }
        let remaining = self.frontier.len() - self.frontier_pos;
        if remaining == 0 {
            self.fence_pending = true;
            return self.next_phase();
        }
        let take = remaining.min(self.chunk * self.threads);
        let slice: Vec<u32> = self.frontier[self.frontier_pos..self.frontier_pos + take].to_vec();
        self.frontier_pos += take;
        let mut phase: Vec<Vec<Op>> = (0..self.threads).map(|_| Vec::new()).collect();
        for (i, &vu) in slice.iter().enumerate() {
            let t = i % self.threads;
            let v = vu as usize;
            let ops = &mut phase[t];
            ops.push(Op::load(self.layout.field_addr(Self::FIELD_DIST, v)));
            ops.push(Op::Compute(3));
            let dv = self.dist[v];
            let (layout, g) = (&self.layout, &self.g);
            let weighted = self.weighted;
            let dist = &mut self.dist;
            let next_frontier = &mut self.next_frontier;
            let mut emitted = 0i64;
            emit_vertex_scan(layout, g, v, ops, |w, ops| {
                let wt = if weighted {
                    1 + ((v as u64 + w as u64) % 16)
                } else {
                    1
                };
                let cand = dv.saturating_add(wt);
                if cand < dist[w as usize] {
                    dist[w as usize] = cand;
                    next_frontier.push(w);
                }
                ops.push(Op::pei(
                    PimOpKind::MinU64,
                    layout.field_addr(Self::FIELD_DIST, w as usize),
                    OperandValue::U64(cand),
                ));
                ops.push(Op::Compute(1));
                emitted += 1;
            });
            self.budget -= emitted;
        }
        Some(phase)
    }
}

// ---------------------------------------------------------------------
// WCC — label propagation to a fixpoint
// ---------------------------------------------------------------------

/// Connected components via min-label propagation along edges
/// (`pim.min8`), iterated to a fixpoint. Propagation follows edge
/// direction, as in the paper's PEGASUS-style formulation over the
/// directed CSR; the reference implementation matches exactly.
#[derive(Debug)]
pub struct Wcc {
    g: Arc<Graph>,
    layout: GraphLayout,
    label: Vec<u64>,
    shadow: Vec<u64>,
    changed: bool,
    threads: usize,
    chunker: Chunker,
    budget: i64,
    chunk: usize,
    fence_pending: bool,
    done: bool,
}

impl Wcc {
    /// Field index of the label array.
    pub const FIELD_LABEL: usize = 0;

    /// Builds the workload.
    pub fn new(g: impl Into<Arc<Graph>>, params: &WorkloadParams) -> (Self, BackingStore) {
        let g = g.into();
        let mut store = BackingStore::with_base(params.heap_base);
        let layout = GraphLayout::alloc(&mut store, &g, 1);
        let n = g.n;
        let label: Vec<u64> = (0..n as u64).collect();
        for (v, l) in label.iter().enumerate() {
            store.write_u64(layout.field_addr(Self::FIELD_LABEL, v), *l);
        }
        let w = Wcc {
            g,
            layout,
            shadow: label.clone(),
            label,
            changed: false,
            threads: params.threads,
            chunker: Chunker::new(n, params.threads),
            budget: params.pei_budget.min(i64::MAX as u64) as i64,
            chunk: (params.phase_chunk / 8).max(16),
            fence_pending: false,
            done: false,
        };
        (w, store)
    }

    /// Reference labels at the generated fixpoint.
    pub fn reference(&self) -> &[u64] {
        &self.label
    }

    /// Address of `label[v]`.
    pub fn label_addr(&self, v: usize) -> pei_types::Addr {
        self.layout.field_addr(Self::FIELD_LABEL, v)
    }
}

impl PhasedTrace for Wcc {
    fn threads(&self) -> usize {
        self.threads
    }

    fn name(&self) -> &str {
        "WCC"
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        if self.done {
            return None;
        }
        if self.fence_pending {
            self.fence_pending = false;
            self.chunker.reset();
            // Labels read in the next iteration are the post-PEI values.
            self.label.copy_from_slice(&self.shadow);
            if !self.changed || self.budget <= 0 {
                self.done = true;
            }
            self.changed = false;
            return Some(vec![vec![Op::Pfence]; self.threads]);
        }
        let ranges = if self.budget > 0 {
            self.chunker.next(self.chunk)
        } else {
            None
        };
        let Some(ranges) = ranges else {
            self.fence_pending = true;
            return self.next_phase();
        };
        let mut phase = Vec::with_capacity(self.threads);
        for r in ranges {
            let mut ops = Vec::new();
            for v in r {
                ops.push(Op::load(self.layout.field_addr(Self::FIELD_LABEL, v)));
                ops.push(Op::Compute(2));
                let lv = self.label[v];
                let (layout, g) = (&self.layout, &self.g);
                let shadow = &mut self.shadow;
                let changed = &mut self.changed;
                let mut emitted = 0i64;
                emit_vertex_scan(layout, g, v, &mut ops, |w, ops| {
                    if lv < shadow[w as usize] {
                        shadow[w as usize] = lv;
                        *changed = true;
                    }
                    ops.push(Op::pei(
                        PimOpKind::MinU64,
                        layout.field_addr(Self::FIELD_LABEL, w as usize),
                        OperandValue::U64(lv),
                    ));
                    ops.push(Op::Compute(1));
                    emitted += 1;
                });
                self.budget -= emitted;
            }
            phase.push(ops);
        }
        Some(phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::WorkloadParams;

    fn tiny_graph() -> Graph {
        Graph::power_law(200, 5, 11)
    }

    fn drain(trace: &mut dyn PhasedTrace) -> (u64, u64) {
        // (phases, peis)
        let mut phases = 0;
        let mut peis = 0;
        while let Some(p) = trace.next_phase() {
            phases += 1;
            for ops in &p {
                peis += ops.iter().filter(|o| matches!(o, Op::Pei { .. })).count() as u64;
            }
        }
        (phases, peis)
    }

    #[test]
    fn atf_pei_count_matches_reference_sum() {
        let (mut atf, _store) = Atf::new(tiny_graph(), &WorkloadParams::quick_test(2));
        let (_, peis) = drain(&mut atf);
        let total: u64 = atf.reference().iter().sum();
        assert_eq!(peis, total, "one increment PEI per teen edge");
        assert!(peis > 0);
    }

    #[test]
    fn pagerank_mass_is_conserved() {
        let g = tiny_graph();
        // Sinks leak mass; use only the non-sink property: sum stays near
        // 1 within the damping model when most vertices have out-edges.
        let (mut pr, _store) = Pagerank::new(g, &WorkloadParams::quick_test(2), 2);
        drain(&mut pr);
        let sum: f64 = pr.reference().iter().sum();
        assert!(sum > 0.3 && sum < 1.5, "pagerank sum = {sum}");
        assert!(pr.reference().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn bfs_levels_match_sequential_bfs() {
        let g = tiny_graph();
        let reference = {
            let mut dist = vec![u64::MAX; g.n];
            let mut q = std::collections::VecDeque::from([0usize]);
            dist[0] = 0;
            while let Some(v) = q.pop_front() {
                for &w in g.succ(v) {
                    if dist[w as usize] == u64::MAX {
                        dist[w as usize] = dist[v] + 1;
                        q.push_back(w as usize);
                    }
                }
            }
            dist
        };
        let (mut bfs, _store) = FrontierMin::bfs(g, &WorkloadParams::quick_test(2), 0);
        drain(&mut bfs);
        assert_eq!(bfs.reference(), &reference[..]);
    }

    #[test]
    fn sssp_satisfies_triangle_inequality_on_edges() {
        let g = tiny_graph();
        let (mut sp, _store) = FrontierMin::sssp(g, &WorkloadParams::quick_test(2), 0);
        drain(&mut sp);
        let dist = sp.reference().to_vec();
        for v in 0..sp.g.n {
            if dist[v] == u64::MAX {
                continue;
            }
            for &w in sp.g.succ(v) {
                let wt = sp.weight(v, w);
                assert!(
                    dist[w as usize] <= dist[v] + wt,
                    "edge ({v},{w}) violates relaxation"
                );
            }
        }
        assert_eq!(dist[0], 0);
    }

    #[test]
    fn wcc_reaches_directed_fixpoint() {
        let g = tiny_graph();
        let (mut wcc, _store) = Wcc::new(g, &WorkloadParams::quick_test(2));
        drain(&mut wcc);
        let label = wcc.reference().to_vec();
        // Fixpoint: no edge can further lower a label.
        for v in 0..wcc.g.n {
            for &w in wcc.g.succ(v) {
                assert!(label[w as usize] <= label[v]);
            }
        }
    }

    #[test]
    fn budget_caps_generation() {
        let mut params = WorkloadParams::quick_test(2);
        params.pei_budget = 50;
        let (mut atf, _store) = Atf::new(tiny_graph(), &params);
        let (_, peis) = drain(&mut atf);
        // Budget is a soft cap (chunk granularity) but must bite.
        assert!(peis < 1000, "peis = {peis}");
    }

    #[test]
    fn phases_have_one_vec_per_thread() {
        let (mut pr, _store) = Pagerank::new(tiny_graph(), &WorkloadParams::quick_test(3), 1);
        while let Some(p) = pr.next_phase() {
            assert_eq!(p.len(), 3);
        }
    }
}
