//! The machine-learning / data-mining workloads (§5.3): streamcluster and
//! SVM-RFE.

use crate::params::WorkloadParams;
use pei_cpu::trace::{Op, PhasedTrace};
use pei_mem::BackingStore;
use pei_types::{Addr, OperandValue, PimOpKind, BLOCK_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Streamcluster (SC): online clustering whose bottleneck is Euclidean
/// distance between points and a few cluster centers. Each point is one
/// cache block of sixteen `f32` coordinates; the `pim.eudist` operation
/// takes the center as a 64-byte input operand and returns the 4-byte
/// squared distance (§5.3: "passing a cluster center as an input operand
/// since there are much more data points than cluster centers").
#[derive(Debug)]
pub struct StreamCluster {
    points_base: Addr,
    n_points: usize,
    centers: Vec<[f32; 16]>,
    points: Vec<[f32; 16]>,
    cursor: usize,
    center: usize,
    threads: usize,
    budget: i64,
    chunk: usize,
    done: bool,
}

impl StreamCluster {
    /// Number of cluster centers evaluated per point. The kernel streams
    /// over *all points per center* (the paper's "distance from few
    /// cluster centers to many data points"), so each point block is
    /// touched once per center pass — cache-resident for small inputs,
    /// a cold stream for large ones.
    pub const CENTERS: usize = 8;

    /// Builds `footprint` bytes of 16-dimensional points plus
    /// [`Self::CENTERS`] centers.
    pub fn new(footprint: usize, params: &WorkloadParams) -> (Self, BackingStore) {
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x5c);
        let n_points = (footprint / BLOCK_BYTES).max(16);
        let mut store = BackingStore::with_base(params.heap_base);
        let points_base = store.alloc((n_points * BLOCK_BYTES) as u64, 64);
        let mut points = Vec::with_capacity(n_points);
        for p in 0..n_points {
            let mut pt = [0f32; 16];
            for (d, x) in pt.iter_mut().enumerate() {
                *x = rng.gen_range(-10.0f32..10.0);
                store.write_f32(points_base.offset((p * BLOCK_BYTES + d * 4) as u64), *x);
            }
            points.push(pt);
        }
        let centers = (0..Self::CENTERS)
            .map(|_| {
                let mut c = [0f32; 16];
                for x in &mut c {
                    *x = rng.gen_range(-10.0f32..10.0);
                }
                c
            })
            .collect();
        let sc = StreamCluster {
            points_base,
            n_points,
            centers,
            points,
            cursor: 0,
            center: 0,
            threads: params.threads,
            budget: params.pei_budget.min(i64::MAX as u64) as i64,
            chunk: (params.phase_chunk / (2 * Self::CENTERS)).max(4),
            done: false,
        };
        (sc, store)
    }

    #[cfg(test)]
    fn center_operand(&self, c: usize) -> OperandValue {
        let mut bytes = Vec::with_capacity(64);
        for x in &self.centers[c] {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        OperandValue::from_bytes(&bytes)
    }

    /// Reference squared distance between point `p` and center `c`.
    pub fn reference_dist(&self, p: usize, c: usize) -> f32 {
        self.points[p]
            .iter()
            .zip(&self.centers[c])
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Point count.
    pub fn n_points(&self) -> usize {
        self.n_points
    }
}

impl PhasedTrace for StreamCluster {
    fn threads(&self) -> usize {
        self.threads
    }

    fn name(&self) -> &str {
        "SC"
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        if self.done || self.budget <= 0 {
            return None;
        }
        if self.cursor >= self.n_points {
            self.center += 1;
            if self.center >= Self::CENTERS {
                self.done = true;
                return None;
            }
            self.cursor = 0;
        }
        let take = (self.chunk * self.threads)
            .min(self.n_points - self.cursor)
            .min(self.budget as usize);
        let mut phase: Vec<Vec<Op>> = (0..self.threads).map(|_| Vec::new()).collect();
        let operand_bytes = {
            let mut bytes = Vec::with_capacity(64);
            for x in &self.centers[self.center] {
                bytes.extend_from_slice(&x.to_le_bytes());
            }
            bytes
        };
        for i in 0..take {
            let p = self.cursor + i;
            let ops = &mut phase[i % self.threads];
            let target = self.points_base.offset((p * BLOCK_BYTES) as u64);
            ops.push(Op::Pei {
                op: PimOpKind::EuclideanDist,
                target,
                input: OperandValue::from_bytes(&operand_bytes),
                dep_dist: 0,
            });
            self.budget -= 1;
            ops.push(Op::Compute(4)); // compare against the running min
        }
        self.cursor += take;
        Some(phase)
    }
}

/// SVM-RFE (SVM): the kernel computes dot products between one
/// hyperplane vector `w` and a very large number of instance vectors `x`.
/// Each `pim.dot` handles a 4-dimensional `f64` chunk; `w`'s matching
/// chunk travels as the 32-byte input operand and the 8-byte partial dot
/// product returns (§5.3). Instance chunks are laid out one per cache
/// block (the remaining 32 bytes hold the next feature group's metadata,
/// matching the column-major feature matrix of SVM-RFE).
#[derive(Debug)]
pub struct SvmRfe {
    x_base: Addr,
    n_instances: usize,
    dims: usize,
    w: Vec<f64>,
    x: Vec<Vec<f64>>,
    cursor: usize,
    passes_left: usize,
    threads: usize,
    budget: i64,
    chunk: usize,
}

impl SvmRfe {
    /// RFE iterations (the SVM kernel re-scans the instance matrix once
    /// per feature-elimination step).
    pub const PASSES: usize = 3;

    /// Builds `footprint` bytes of `dims`-dimensional instances.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is not a multiple of 4.
    pub fn new(footprint: usize, dims: usize, params: &WorkloadParams) -> (Self, BackingStore) {
        assert_eq!(dims % 4, 0, "dims must be a multiple of 4");
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x57b);
        let blocks_per_instance = dims / 4;
        let n_instances = (footprint / (blocks_per_instance * BLOCK_BYTES)).max(8);
        let mut store = BackingStore::with_base(params.heap_base);
        let x_base = store.alloc((n_instances * blocks_per_instance * BLOCK_BYTES) as u64, 64);
        let mut x = Vec::with_capacity(n_instances);
        for i in 0..n_instances {
            let mut inst = Vec::with_capacity(dims);
            for d in 0..dims {
                let v: f64 = rng.gen_range(-1.0..1.0);
                inst.push(v);
                let blk = d / 4;
                let off = (d % 4) * 8;
                store.write_f64(
                    x_base.offset(((i * blocks_per_instance + blk) * BLOCK_BYTES + off) as u64),
                    v,
                );
            }
            x.push(inst);
        }
        let w: Vec<f64> = (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let svm = SvmRfe {
            x_base,
            n_instances,
            dims,
            w,
            x,
            cursor: 0,
            passes_left: Self::PASSES,
            threads: params.threads,
            budget: params.pei_budget.min(i64::MAX as u64) as i64,
            chunk: (params.phase_chunk / 8).max(4),
        };
        (svm, store)
    }

    fn w_operand(&self, chunk: usize) -> OperandValue {
        let mut bytes = Vec::with_capacity(32);
        for d in 0..4 {
            bytes.extend_from_slice(&self.w[chunk * 4 + d].to_le_bytes());
        }
        OperandValue::from_bytes(&bytes)
    }

    /// Reference dot product `w · x[i]`.
    pub fn reference_dot(&self, i: usize) -> f64 {
        self.x[i].iter().zip(&self.w).map(|(a, b)| a * b).sum()
    }

    /// Instance count.
    pub fn n_instances(&self) -> usize {
        self.n_instances
    }
}

impl PhasedTrace for SvmRfe {
    fn threads(&self) -> usize {
        self.threads
    }

    fn name(&self) -> &str {
        "SVM"
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        if self.budget <= 0 {
            return None;
        }
        if self.cursor >= self.n_instances {
            if self.passes_left <= 1 {
                return None;
            }
            self.passes_left -= 1;
            self.cursor = 0;
        }
        let blocks_per_instance = self.dims / 4;
        let take = (self.chunk * self.threads)
            .min(self.n_instances - self.cursor)
            .min((self.budget as usize).div_ceil(blocks_per_instance));
        let mut phase: Vec<Vec<Op>> = (0..self.threads).map(|_| Vec::new()).collect();
        for i in 0..take {
            let inst = self.cursor + i;
            let ops = &mut phase[i % self.threads];
            for blk in 0..blocks_per_instance {
                let target = self
                    .x_base
                    .offset(((inst * blocks_per_instance + blk) * BLOCK_BYTES) as u64);
                ops.push(Op::Pei {
                    op: PimOpKind::DotProduct,
                    target,
                    input: self.w_operand(blk),
                    dep_dist: 0,
                });
                ops.push(Op::Compute(2)); // accumulate partial dot
                self.budget -= 1;
            }
            ops.push(Op::Compute(4)); // margin computation
        }
        self.cursor += take;
        Some(phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(t: &mut dyn PhasedTrace) -> u64 {
        let mut peis = 0;
        while let Some(p) = t.next_phase() {
            for ops in &p {
                peis += ops.iter().filter(|o| matches!(o, Op::Pei { .. })).count() as u64;
            }
        }
        peis
    }

    #[test]
    fn sc_emits_k_peis_per_point() {
        let params = WorkloadParams::quick_test(2);
        let (mut sc, _store) = StreamCluster::new(4 * 1024, &params);
        let n = sc.n_points();
        let peis = drain(&mut sc);
        assert_eq!(peis as usize, n * StreamCluster::CENTERS);
    }

    #[test]
    fn sc_store_matches_native_points() {
        let params = WorkloadParams::quick_test(1);
        let (sc, store) = StreamCluster::new(2 * 1024, &params);
        for p in 0..sc.n_points() {
            for d in 0..16 {
                let a = sc.points_base.offset((p * BLOCK_BYTES + d * 4) as u64);
                assert_eq!(store.read_f32(a), sc.points[p][d]);
            }
        }
        // The PIM op applied to the store must equal the reference.
        let mut sim_store = store;
        let out = pei_core::ops::apply(
            PimOpKind::EuclideanDist,
            sc.points_base,
            &sc.center_operand(0),
            &mut sim_store,
        );
        let got = f32::from_le_bytes(out.as_bytes().unwrap().try_into().unwrap());
        assert!((got - sc.reference_dist(0, 0)).abs() < 1e-3);
    }

    #[test]
    fn svm_dot_products_match_reference_through_the_pim_op() {
        let params = WorkloadParams::quick_test(1);
        let (svm, store) = SvmRfe::new(2 * 1024, 16, &params);
        let mut sim_store = store;
        let blocks = svm.dims / 4;
        for i in 0..svm.n_instances().min(10) {
            let mut total = 0.0;
            for blk in 0..blocks {
                let target = svm.x_base.offset(((i * blocks + blk) * BLOCK_BYTES) as u64);
                let out = pei_core::ops::apply(
                    PimOpKind::DotProduct,
                    target,
                    &svm.w_operand(blk),
                    &mut sim_store,
                );
                total += out.as_f64().unwrap();
            }
            assert!((total - svm.reference_dot(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn svm_emits_dims_over_4_peis_per_instance() {
        let params = WorkloadParams::quick_test(2);
        let (mut svm, _store) = SvmRfe::new(4 * 1024, 16, &params);
        let n = svm.n_instances();
        let peis = drain(&mut svm);
        assert_eq!(peis as usize, n * 4 * SvmRfe::PASSES);
    }

    #[test]
    fn budget_caps_sc() {
        let mut params = WorkloadParams::quick_test(1);
        params.pei_budget = 20;
        let (mut sc, _store) = StreamCluster::new(64 * 1024, &params);
        let peis = drain(&mut sc);
        assert!(peis < 200, "peis = {peis}");
    }
}
