//! The workload registry: a uniform constructor over all ten case-study
//! applications, used by the experiment harnesses.

use crate::analytics::{HashJoin, HistogramW};
use crate::graph::Graph;
use crate::graph_kernels::{Atf, FrontierMin, Pagerank, Wcc};
use crate::ml::{StreamCluster, SvmRfe};
use crate::params::{InputSize, WorkloadParams};
use pei_cpu::trace::PhasedTrace;
use pei_mem::BackingStore;
use std::sync::Arc;

/// The ten workloads of §5, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Average Teenage Follower (graph).
    Atf,
    /// Breadth-First Search (graph).
    Bfs,
    /// PageRank (graph).
    Pr,
    /// Single-Source Shortest Path (graph).
    Sp,
    /// Weakly Connected Components (graph).
    Wcc,
    /// Hash Join (analytics).
    Hj,
    /// Histogram (analytics).
    Hg,
    /// Radix Partitioning (analytics).
    Rp,
    /// Streamcluster (ML).
    Sc,
    /// SVM-RFE (ML).
    Svm,
}

impl Workload {
    /// All workloads, in Figure 6 order.
    pub const ALL: [Workload; 10] = [
        Workload::Atf,
        Workload::Bfs,
        Workload::Pr,
        Workload::Sp,
        Workload::Wcc,
        Workload::Hj,
        Workload::Hg,
        Workload::Rp,
        Workload::Sc,
        Workload::Svm,
    ];

    /// The five graph workloads (they share input graphs, Table 3).
    pub const GRAPH: [Workload; 5] = [
        Workload::Atf,
        Workload::Bfs,
        Workload::Pr,
        Workload::Sp,
        Workload::Wcc,
    ];

    /// Short name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Atf => "ATF",
            Workload::Bfs => "BFS",
            Workload::Pr => "PR",
            Workload::Sp => "SP",
            Workload::Wcc => "WCC",
            Workload::Hj => "HJ",
            Workload::Hg => "HG",
            Workload::Rp => "RP",
            Workload::Sc => "SC",
            Workload::Svm => "SVM",
        }
    }

    /// Builds the workload for the given input size: returns the initial
    /// simulated memory and the trace generator.
    pub fn build(
        self,
        size: InputSize,
        params: &WorkloadParams,
    ) -> (BackingStore, Box<dyn PhasedTrace>) {
        let footprint = size.footprint(params.l3_bytes);
        match self {
            Workload::Atf | Workload::Bfs | Workload::Pr | Workload::Sp | Workload::Wcc => {
                let g = graph_for(footprint, params.seed);
                self.build_on_graph(g, params)
            }
            Workload::Hj => {
                let (w, s) = HashJoin::new(footprint, params);
                (s, Box::new(w))
            }
            Workload::Hg => {
                let (w, s) = HistogramW::histogram(footprint, params);
                (s, Box::new(w))
            }
            Workload::Rp => {
                let (w, s) = HistogramW::radix_partition(footprint, params, 4);
                (s, Box::new(w))
            }
            Workload::Sc => {
                let (w, s) = StreamCluster::new(footprint, params);
                (s, Box::new(w))
            }
            Workload::Svm => {
                let (w, s) = SvmRfe::new(footprint, 16, params);
                (s, Box::new(w))
            }
        }
    }

    /// Builds a graph workload on an explicit graph (the Fig. 2 / Fig. 8
    /// nine-graph sweeps construct their own graph series). Accepts a
    /// plain [`Graph`] or a shared [`Arc<Graph>`] from
    /// [`crate::cache`]; kernels only read the graph, so an `Arc` clone
    /// is enough.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a graph workload.
    pub fn build_on_graph(
        self,
        g: impl Into<Arc<Graph>>,
        params: &WorkloadParams,
    ) -> (BackingStore, Box<dyn PhasedTrace>) {
        let g = g.into();
        match self {
            Workload::Atf => {
                let (w, s) = Atf::new(g, params);
                (s, Box::new(w))
            }
            Workload::Bfs => {
                let (w, s) = FrontierMin::bfs(g, params, 0);
                (s, Box::new(w))
            }
            Workload::Pr => {
                let (w, s) = Pagerank::new(g, params, 2);
                (s, Box::new(w))
            }
            Workload::Sp => {
                let (w, s) = FrontierMin::sssp(g, params, 0);
                (s, Box::new(w))
            }
            Workload::Wcc => {
                let (w, s) = Wcc::new(g, params);
                (s, Box::new(w))
            }
            other => panic!("{other:?} is not a graph workload"),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds a power-law graph whose PEI-visible footprint (~48 B per vertex
/// across fields + CSR) lands near `footprint` bytes. The graph comes
/// from the process-wide [`crate::cache`], so repeated builds of the
/// same `(footprint, seed)` — e.g. the four machine configurations of
/// one figure cell — share a single allocation.
pub fn graph_for(footprint: usize, seed: u64) -> Arc<Graph> {
    let n = (footprint / 48).max(64);
    crate::cache::shared_power_law(n, 10, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_builds_and_generates() {
        let params = WorkloadParams {
            pei_budget: 2_000,
            ..WorkloadParams::quick_test(2)
        };
        for w in Workload::ALL {
            let (_store, mut trace) = w.build(InputSize::Small, &params);
            assert_eq!(trace.threads(), 2, "{w}");
            let mut phases = 0;
            let mut ops = 0usize;
            while let Some(p) = trace.next_phase() {
                phases += 1;
                ops += p.iter().map(|v| v.len()).sum::<usize>();
                assert!(phases < 100_000, "{w} runaway");
            }
            assert!(ops > 0, "{w} produced an empty trace");
        }
    }

    #[test]
    fn footprint_scales_with_size() {
        let params = WorkloadParams::quick_test(2);
        let (s_small, _) = Workload::Sc.build(InputSize::Small, &params);
        let (s_large, _) = Workload::Sc.build(InputSize::Large, &params);
        assert!(s_large.heap_top().0 > s_small.heap_top().0);
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<_> = Workload::ALL.iter().map(|w| w.label()).collect();
        assert_eq!(
            labels,
            vec!["ATF", "BFS", "PR", "SP", "WCC", "HJ", "HG", "RP", "SC", "SVM"]
        );
    }

    #[test]
    #[should_panic(expected = "not a graph workload")]
    fn non_graph_on_graph_panics() {
        let params = WorkloadParams::quick_test(1);
        let g = Graph::power_law(10, 2, 1);
        Workload::Hj.build_on_graph(g, &params);
    }
}
