//! HMC geometry, DRAM timing, and address routing.

use pei_engine::ClockDomain;
use pei_types::ids::VaultLoc;
use pei_types::{BankId, BlockAddr, CubeId, Cycle, VaultId};

/// Row-buffer management policy of the vault controllers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagePolicy {
    /// Keep rows open after an access (FR-FCFS exploits row hits; the
    /// paper's configuration).
    Open,
    /// Auto-precharge after every access: no row hits, but no conflict
    /// precharge either (an ablation point).
    Closed,
}

/// Periodic DRAM refresh parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshTiming {
    /// Refresh interval (tREFI): one all-bank refresh per vault per
    /// interval, in host cycles.
    pub t_refi: Cycle,
    /// Refresh duration (tRFC), in host cycles.
    pub t_rfc: Cycle,
}

impl RefreshTiming {
    /// Typical DDR-class values: tREFI = 7.8 µs, tRFC = 260 ns.
    pub fn typical(mem_clk: ClockDomain) -> Self {
        RefreshTiming {
            t_refi: mem_clk.ns_to_cycles(7800.0),
            t_rfc: mem_clk.ns_to_cycles(260.0),
        }
    }
}

/// Open-page DRAM timing in host cycles (derived from the paper's
/// nanosecond parameters through the 2 GHz memory clock domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Row activate to column command (tRCD).
    pub t_rcd: Cycle,
    /// Column command to data (tCL / tCWL).
    pub t_cl: Cycle,
    /// Precharge (tRP).
    pub t_rp: Cycle,
    /// Burst transfer of one 64-byte block out of the sense amps.
    pub t_bl: Cycle,
}

impl DramTiming {
    /// The paper's timing: tCL = tRCD = tRP = 13.75 ns, at `mem_clk`.
    pub fn paper(mem_clk: ClockDomain) -> Self {
        DramTiming {
            t_rcd: mem_clk.ns_to_cycles(13.75),
            t_cl: mem_clk.ns_to_cycles(13.75),
            t_rp: mem_clk.ns_to_cycles(13.75),
            t_bl: mem_clk.cycles(4),
        }
    }
}

/// Full configuration of the HMC-based main memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HmcConfig {
    /// Number of cubes on the daisy chain.
    pub cubes: usize,
    /// Vaults per cube.
    pub vaults_per_cube: usize,
    /// DRAM banks per vault.
    pub banks_per_vault: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: usize,
    /// DRAM timing parameters.
    pub timing: DramTiming,
    /// Vertical (TSV) link bandwidth per vault, bytes per host cycle
    /// (64 TSVs × 2 Gb/s = 16 GB/s = 4 B per 4 GHz host cycle).
    pub tsv_bytes_per_cycle: f64,
    /// Off-chip link bandwidth per direction, bytes per host cycle
    /// (80 GB/s full-duplex = 20 B per 4 GHz host cycle each way).
    pub link_bytes_per_cycle: f64,
    /// Off-chip link propagation latency (SerDes + board), host cycles.
    pub link_latency: Cycle,
    /// Extra latency per daisy-chain hop, host cycles.
    pub hop_latency: Cycle,
    /// Memory-side clock domain (2 GHz under the 4 GHz host clock).
    pub mem_clk: ClockDomain,
    /// Row-buffer policy.
    pub page_policy: PagePolicy,
    /// Periodic refresh; `None` disables it (ablations).
    pub refresh: Option<RefreshTiming>,
}

impl HmcConfig {
    /// The paper's Table 2 memory system: 8 cubes × 16 vaults × 16 banks.
    pub fn paper() -> Self {
        let mem_clk = ClockDomain::new(2, 4.0);
        HmcConfig {
            cubes: 8,
            vaults_per_cube: 16,
            banks_per_vault: 16,
            row_bytes: 2048,
            timing: DramTiming::paper(mem_clk),
            tsv_bytes_per_cycle: 4.0,
            link_bytes_per_cycle: 20.0,
            link_latency: 40, // ~10 ns SerDes + board round
            hop_latency: 16,  // ~4 ns per chain hop
            mem_clk,
            page_policy: PagePolicy::Open,
            refresh: Some(RefreshTiming::typical(mem_clk)),
        }
    }

    /// A scaled-down memory for fast experiments: 1 cube × 16 vaults,
    /// with the off-chip link scaled proportionally to the 4× smaller
    /// core count (20 GB/s per direction = 5 B per host cycle). Per-vault
    /// behaviour (banks, timing, TSVs) is unchanged.
    pub fn scaled() -> Self {
        HmcConfig {
            cubes: 1,
            link_bytes_per_cycle: 5.0,
            ..Self::paper()
        }
    }

    /// Total number of vaults in the system.
    pub fn total_vaults(&self) -> usize {
        self.cubes * self.vaults_per_cube
    }

    /// Cube owning the vault with flat index `vault` (the inverse of
    /// [`VaultLoc::flat_index`]'s cube component).
    ///
    /// This is the shard-partition function of the parallel engine
    /// (DESIGN.md §10): every vault- and memory-PCU-side event is owned
    /// by exactly one cube shard, and [`HmcConfig::route`] maps each
    /// block to exactly one cube, so no cube-to-cube traffic exists —
    /// the only inter-shard edges are host→cube requests and cube→host
    /// completions across the serialized off-chip link.
    pub fn cube_of(&self, vault: usize) -> usize {
        debug_assert!(vault < self.total_vaults());
        vault / self.vaults_per_cube
    }

    /// Routes a block address to its cube/vault/bank and row id.
    ///
    /// Blocks are interleaved across cubes, then vaults, then banks on
    /// consecutive block-address bits, maximizing memory-level parallelism
    /// for streaming accesses — the standard HMC mapping.
    pub fn route(&self, block: BlockAddr) -> (VaultLoc, BankId, u64) {
        let mut v = block.0;
        let cube = v & (self.cubes as u64 - 1);
        v >>= self.cubes.trailing_zeros();
        let vault = v & (self.vaults_per_cube as u64 - 1);
        v >>= self.vaults_per_cube.trailing_zeros();
        let bank = v & (self.banks_per_vault as u64 - 1);
        v >>= self.banks_per_vault.trailing_zeros();
        let row = v / (self.row_bytes / pei_types::BLOCK_BYTES) as u64;
        (
            VaultLoc {
                cube: CubeId(cube as u16),
                vault: VaultId(vault as u16),
            },
            BankId(bank as u16),
            row,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_of_inverts_flat_index() {
        let c = HmcConfig::paper();
        for block in 0..1024u64 {
            let (loc, _, _) = c.route(pei_types::BlockAddr(block));
            let flat = loc.flat_index(c.vaults_per_cube);
            assert_eq!(c.cube_of(flat), loc.cube.index());
        }
    }

    #[test]
    fn paper_geometry() {
        let c = HmcConfig::paper();
        assert_eq!(c.total_vaults(), 128);
        // 256 DRAM banks per HMC (Table 2): 16 vaults × 16 banks.
        assert_eq!(c.vaults_per_cube * c.banks_per_vault, 256);
        // Timing: 13.75 ns at 4 GHz host = 55 cycles, aligned up to 56.
        assert_eq!(c.timing.t_cl, 56);
    }

    #[test]
    fn route_interleaves_consecutive_blocks_across_cubes() {
        let c = HmcConfig::paper();
        let (l0, _, _) = c.route(BlockAddr(0));
        let (l1, _, _) = c.route(BlockAddr(1));
        assert_ne!(l0.cube, l1.cube);
    }

    #[test]
    fn route_is_total_and_in_range() {
        let c = HmcConfig::paper();
        for raw in [0u64, 1, 255, 0xffff, 0xdead_beef, u64::MAX >> 7] {
            let (loc, bank, _row) = c.route(BlockAddr(raw));
            assert!(loc.cube.index() < c.cubes);
            assert!(loc.vault.index() < c.vaults_per_cube);
            assert!(bank.index() < c.banks_per_vault);
        }
    }

    #[test]
    fn same_row_same_bank_for_adjacent_high_blocks() {
        let c = HmcConfig::paper();
        // Two blocks differing only above the bank bits but within a row
        // stride land in the same bank with consecutive rows eventually.
        let stride = (c.cubes * c.vaults_per_cube * c.banks_per_vault) as u64;
        let (la, ba, ra) = c.route(BlockAddr(7));
        let (lb, bb, rb) = c.route(BlockAddr(7 + stride));
        assert_eq!((la, ba), (lb, bb));
        assert!(rb >= ra);
    }
}
