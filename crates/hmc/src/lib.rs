//! Hybrid Memory Cube (HMC) main-memory model.
//!
//! Models the paper's Table 2 memory system: 8 cubes of 4 GB on a daisy
//! chain (80 GB/s full-duplex), 16 vaults per cube, 16 DRAM banks per
//! vault with FR-FCFS scheduling and open-page timing
//! (tCL = tRCD = tRP = 13.75 ns), 64-TSV vertical links per vault at
//! 2 Gb/s signaling, and a packetized off-chip protocol with separate
//! request and response channels (16-byte flits).
//!
//! The crate knows nothing about PEIs beyond transporting
//! [`pei_types::PimCmd`] packets; memory-side PCU behaviour lives in
//! `pei-core`.
//!
//! # Examples
//!
//! ```
//! use pei_hmc::HmcConfig;
//! use pei_types::BlockAddr;
//!
//! let cfg = HmcConfig::paper();
//! let (loc, bank, _row) = cfg.route(BlockAddr(0x12345));
//! assert!(loc.cube.index() < cfg.cubes);
//! assert!(bank.index() < cfg.banks_per_vault);
//! ```
//!
//! This crate's place in the workspace is mapped in DESIGN.md §5.

pub mod config;
pub mod ctrl;
pub mod vault;

pub use config::{DramTiming, HmcConfig, PagePolicy, RefreshTiming};
pub use ctrl::{CtrlIn, CtrlOut, HmcController};
pub use vault::{Vault, VaultIn, VaultOut};
