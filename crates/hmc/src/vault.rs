//! One vault: a vertical DRAM partition with its own controller on the
//! logic die (FR-FCFS, open page) and TSV vertical link.

use crate::config::{HmcConfig, PagePolicy};
use pei_engine::{BwChannel, CounterId, Counters, Outbox, StatsReport};
use pei_types::{BlockAddr, Cycle, ReqId, BLOCK_BYTES};
use std::collections::VecDeque;

/// A block access arriving at the vault controller (from the off-chip
/// link or from the vault's memory-side PCU).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaultIn {
    /// Transaction id (echoed in [`VaultOut::Done`]).
    pub id: ReqId,
    /// Target block (must route to this vault).
    pub block: BlockAddr,
    /// Whether this is a write.
    pub write: bool,
}

/// Vault outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VaultOut {
    /// An access completed (data has crossed the TSVs).
    Done {
        /// Echo of the request id.
        id: ReqId,
        /// The block accessed.
        block: BlockAddr,
        /// Whether it was a write.
        write: bool,
        /// Completion cycle.
        at: Cycle,
    },
    /// Ask to be woken at `at` to start queued bank work.
    Wake {
        /// Wakeup cycle.
        at: Cycle,
    },
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: VaultIn,
    row: u64,
}

#[derive(Debug)]
struct DramBank {
    open_row: Option<u64>,
    busy_until: Cycle,
    queue: VecDeque<Pending>,
    /// Cycle of the outstanding (un-fired) Wake for this bank, if any.
    /// Prevents both duplicate wakeups (event-queue flooding) and lost
    /// wakeups (a stale wake firing while the bank is busy again).
    wake_at: Option<Cycle>,
}

/// One vault (DRAM partition + controller + TSV link).
#[derive(Debug)]
pub struct Vault {
    banks: Vec<DramBank>,
    cfg: HmcConfig,
    tsv: BwChannel,
    counters: Counters,
    c: VaultCounters,
    // Fault-injection switch: a wedged vault accepts and queues accesses
    // but never starts bank work, modeling a hung DRAM partition. Normal
    // runs never set this; the single branch in `try_start` is the whole
    // cost (see pei-system's checked mode).
    wedged: bool,
}

/// Dense counter slots registered at construction (hot-path bumps are
/// indexed adds; names materialize only in [`Vault::report`]).
#[derive(Debug, Clone, Copy)]
struct VaultCounters {
    activates: CounterId,
    reads: CounterId,
    writes: CounterId,
    row_hits: CounterId,
    refresh_delays: CounterId,
}

impl VaultCounters {
    fn register(counters: &mut Counters) -> Self {
        VaultCounters {
            activates: counters.register("activates"),
            reads: counters.register("reads"),
            writes: counters.register("writes"),
            row_hits: counters.register("row_hits"),
            refresh_delays: counters.register("refresh_delays"),
        }
    }
}

impl Vault {
    /// Creates an idle vault per `cfg`.
    pub fn new(cfg: &HmcConfig) -> Self {
        let mut counters = Counters::new();
        let c = VaultCounters::register(&mut counters);
        Vault {
            banks: (0..cfg.banks_per_vault)
                .map(|_| DramBank {
                    open_row: None,
                    busy_until: 0,
                    queue: VecDeque::new(),
                    wake_at: None,
                })
                .collect(),
            cfg: *cfg,
            tsv: BwChannel::new(cfg.tsv_bytes_per_cycle, 2),
            counters,
            c,
            wedged: false,
        }
    }

    /// Fault hook: wedges the vault — queued and future accesses are
    /// accepted but never serviced, so dependent requests stall exactly
    /// as they would behind a hung DRAM partition.
    pub fn fault_wedge(&mut self) {
        self.wedged = true;
    }

    /// If `start` falls inside a periodic all-bank refresh window
    /// (`[k·tREFI, k·tREFI + tRFC)`), pushes it past the window.
    fn refresh_adjust(&mut self, start: Cycle) -> Cycle {
        let Some(r) = self.cfg.refresh else {
            return start;
        };
        let phase = start % r.t_refi;
        if phase < r.t_rfc {
            self.counters.inc(self.c.refresh_delays);
            start - phase + r.t_rfc
        } else {
            start
        }
    }

    /// Enqueues an access and starts bank work if possible.
    pub fn handle_access(&mut self, now: Cycle, req: VaultIn, out: &mut Outbox<VaultOut>) {
        let (_loc, bank, row) = self.cfg.route(req.block);
        self.banks[bank.index()]
            .queue
            .push_back(Pending { req, row });
        self.try_start(bank.index(), now, out);
    }

    /// Wakeup: scan banks for startable work.
    pub fn wake(&mut self, now: Cycle, out: &mut Outbox<VaultOut>) {
        for b in 0..self.banks.len() {
            // This wake consumes any outstanding wakeup scheduled at or
            // before `now`.
            if self.banks[b].wake_at.is_some_and(|t| t <= now) {
                self.banks[b].wake_at = None;
            }
            self.try_start(b, now, out);
        }
    }

    fn try_start(&mut self, bank_idx: usize, now: Cycle, out: &mut Outbox<VaultOut>) {
        if self.wedged {
            return;
        }
        let start = {
            let bank = &mut self.banks[bank_idx];
            if bank.queue.is_empty() {
                return;
            }
            if bank.busy_until > now {
                // Bank busy: make sure exactly one wakeup is outstanding.
                if bank.wake_at.is_none() {
                    bank.wake_at = Some(bank.busy_until);
                    out.push(VaultOut::Wake {
                        at: bank.busy_until,
                    });
                }
                return;
            }
            self.cfg.mem_clk.align_up(now.max(bank.busy_until))
        };
        let start = self.refresh_adjust(start);

        // FR-FCFS: oldest row-hit first, else the oldest request.
        let pick = {
            let bank = &self.banks[bank_idx];
            bank.queue
                .iter()
                .position(|p| Some(p.row) == bank.open_row)
                .unwrap_or(0)
        };
        let pending = self.banks[bank_idx].queue.remove(pick).expect("nonempty");

        let t = &self.cfg.timing;
        let (access_lat, activated, row_hit) = match self.banks[bank_idx].open_row {
            Some(r) if r == pending.row => (t.t_cl, false, true),
            Some(_) => (t.t_rp + t.t_rcd + t.t_cl, true, false),
            None => (t.t_rcd + t.t_cl, true, false),
        };
        self.counters.add(self.c.activates, u64::from(activated));
        self.counters.add(self.c.row_hits, u64::from(row_hit));
        if pending.req.write {
            self.counters.inc(self.c.writes);
        } else {
            self.counters.inc(self.c.reads);
        }

        let burst_done = start + access_lat + t.t_bl;
        let bank = &mut self.banks[bank_idx];
        bank.open_row = match self.cfg.page_policy {
            PagePolicy::Open => Some(pending.row),
            PagePolicy::Closed => None, // auto-precharge
        };
        bank.busy_until = burst_done;

        // Data crosses the vault's TSVs after the burst.
        let delivered = self.tsv.transfer(burst_done, BLOCK_BYTES as u64);
        out.push(VaultOut::Done {
            id: pending.req.id,
            block: pending.req.block,
            write: pending.req.write,
            at: delivered,
        });
        if !bank.queue.is_empty() && bank.wake_at.is_none() {
            bank.wake_at = Some(burst_done);
            out.push(VaultOut::Wake { at: burst_done });
        }
    }

    /// Queued + in-flight work left in this vault (test helper).
    pub fn backlog(&self) -> usize {
        self.banks.iter().map(|b| b.queue.len()).sum()
    }

    /// DRAM accesses served so far (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.counters.get(self.c.reads) + self.counters.get(self.c.writes)
    }

    /// Labels the current counter values as the end of phase `label`
    /// (see `Counters::snapshot`).
    pub fn snapshot_phase(&mut self, label: &'static str) {
        self.counters.snapshot(label);
    }

    /// Dumps statistics under `prefix`.
    pub fn report(&self, prefix: &str, stats: &mut StatsReport) {
        self.counters.flush(prefix, stats);
        stats.bump(
            format!("{prefix}tsv_bytes"),
            self.tsv.bytes_carried() as f64,
        );
    }
}

impl VaultIn {
    /// Appends the access to a snapshot stream.
    pub fn encode(&self, e: &mut pei_types::snap::Encoder) {
        e.u64(self.id.0);
        e.u64(self.block.0);
        e.bool(self.write);
    }

    /// Inverse of [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Fails on truncation or a malformed boolean.
    pub fn decode(d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<VaultIn> {
        Ok(VaultIn {
            id: ReqId(d.u64()?),
            block: BlockAddr(d.u64()?),
            write: d.bool()?,
        })
    }
}

impl pei_types::snap::SnapshotState for Vault {
    /// A wedged vault (fault injection armed) must not be snapshotted;
    /// the caller refuses fault-armed machines before reaching here.
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        debug_assert!(!self.wedged, "snapshot of a fault-wedged vault");
        e.seq(self.banks.len());
        for bank in &self.banks {
            e.opt(bank.open_row.is_some());
            if let Some(r) = bank.open_row {
                e.u64(r);
            }
            e.u64(bank.busy_until);
            e.seq(bank.queue.len());
            for p in &bank.queue {
                p.req.encode(e);
                e.u64(p.row);
            }
            e.opt(bank.wake_at.is_some());
            if let Some(t) = bank.wake_at {
                e.u64(t);
            }
        }
        self.tsv.save(e);
        self.counters.save(e);
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        let n = d.seq(23)?;
        pei_types::snap::check_len("vault banks", n, self.banks.len())?;
        for bank in &mut self.banks {
            bank.open_row = if d.opt()? { Some(d.u64()?) } else { None };
            bank.busy_until = d.u64()?;
            let q = d.seq(25)?;
            bank.queue.clear();
            for _ in 0..q {
                let req = VaultIn::decode(d)?;
                bank.queue.push_back(Pending { req, row: d.u64()? });
            }
            bank.wake_at = if d.opt()? { Some(d.u64()?) } else { None };
        }
        self.tsv.load(d)?;
        self.counters.load(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vault() -> (Vault, HmcConfig) {
        let cfg = HmcConfig::scaled();
        (Vault::new(&cfg), cfg)
    }

    /// A block guaranteed to live in vault 0 / bank `bank` / row `row`
    /// of the scaled config.
    fn block_at(cfg: &HmcConfig, bank: u64, row: u64) -> BlockAddr {
        let cube_bits = cfg.cubes.trailing_zeros();
        let vault_bits = cfg.vaults_per_cube.trailing_zeros();
        let bank_bits = cfg.banks_per_vault.trailing_zeros();
        let blocks_per_row = (cfg.row_bytes / BLOCK_BYTES) as u64;
        let b = BlockAddr(
            ((row * blocks_per_row) << (cube_bits + vault_bits + bank_bits))
                | (bank << (cube_bits + vault_bits)),
        );
        let (_, got_bank, got_row) = cfg.route(b);
        assert_eq!(got_bank.index() as u64, bank);
        assert_eq!(got_row, row);
        b
    }

    fn drive(v: &mut Vault, reqs: &[(Cycle, VaultIn)]) -> Vec<(ReqId, Cycle)> {
        // Tiny event loop for the vault alone.
        let mut done = Vec::new();
        let mut wakes: Vec<Cycle> = Vec::new();
        let mut out = Outbox::new();
        for &(t, r) in reqs {
            v.handle_access(t, r, &mut out);
        }
        loop {
            for o in out.drain() {
                match o {
                    VaultOut::Done { id, at, .. } => done.push((id, at)),
                    VaultOut::Wake { at } => wakes.push(at),
                }
            }
            wakes.sort_unstable();
            match wakes.first().copied() {
                Some(t) => {
                    wakes.remove(0);
                    v.wake(t, &mut out);
                }
                None => break,
            }
        }
        done.sort_by_key(|&(_, at)| at);
        done
    }

    #[test]
    fn single_read_latency_is_rcd_plus_cl_plus_burst() {
        // Disable refresh: this test checks the exact latency equation.
        let cfg = HmcConfig {
            refresh: None,
            ..HmcConfig::scaled()
        };
        let mut v = Vault::new(&cfg);
        let b = block_at(&cfg, 0, 0);
        let done = drive(
            &mut v,
            &[(
                0,
                VaultIn {
                    id: ReqId(1),
                    block: b,
                    write: false,
                },
            )],
        );
        let t = cfg.timing;
        let expect_burst = t.t_rcd + t.t_cl + t.t_bl;
        // Plus TSV serialization (64 B at 4 B/cycle = 16) + TSV latency 2.
        assert_eq!(done[0].1, expect_burst + 16 + 2);
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let (mut v, cfg) = vault();
        let same_row_a = block_at(&cfg, 0, 0);
        let other_row = block_at(&cfg, 0, 3);
        let mk = |id, block| VaultIn {
            id: ReqId(id),
            block,
            write: false,
        };
        let done = drive(
            &mut v,
            &[
                (0, mk(1, same_row_a)),
                (0, mk(2, same_row_a)), // row hit
                (0, mk(3, other_row)),  // row conflict: tRP + tRCD + tCL
            ],
        );
        let gap_hit = done[1].1 - done[0].1;
        let gap_conflict = done[2].1 - done[1].1;
        assert!(
            gap_conflict > gap_hit,
            "conflict {gap_conflict} vs hit {gap_hit}"
        );
    }

    #[test]
    fn fr_fcfs_prefers_open_row() {
        let (mut v, cfg) = vault();
        let row0 = block_at(&cfg, 0, 0);
        let row1 = block_at(&cfg, 0, 1);
        let mk = |id, block| VaultIn {
            id: ReqId(id),
            block,
            write: false,
        };
        // First opens row 0; while it is busy, queue row1 then row0 again.
        let done = drive(
            &mut v,
            &[(0, mk(1, row0)), (1, mk(2, row1)), (2, mk(3, row0))],
        );
        let order: Vec<u64> = done.iter().map(|&(id, _)| id.0).collect();
        assert_eq!(order, vec![1, 3, 2], "row-hit request 3 jumps ahead of 2");
    }

    #[test]
    fn banks_operate_in_parallel() {
        let (mut v, cfg) = vault();
        let b0 = block_at(&cfg, 0, 0);
        let b1 = block_at(&cfg, 1, 0);
        let mk = |id, block| VaultIn {
            id: ReqId(id),
            block,
            write: false,
        };
        let done_par = drive(&mut v, &[(0, mk(1, b0)), (0, mk(2, b1))]);
        // Bank-parallel accesses overlap: both finish well before two
        // serialized accesses would.
        let (mut v2, _) = vault();
        let done_ser = drive(&mut v2, &[(0, mk(1, b0)), (0, mk(2, b0))]);
        assert!(done_par[1].1 < done_ser[1].1);
    }

    #[test]
    fn refresh_window_delays_accesses() {
        let cfg = HmcConfig::scaled();
        let r = cfg.refresh.unwrap();
        let mut v = Vault::new(&cfg);
        // An access arriving inside the refresh window is pushed past it.
        let done = drive(
            &mut v,
            &[(
                2, // inside [0, tRFC)
                VaultIn {
                    id: ReqId(1),
                    block: block_at(&cfg, 0, 0),
                    write: false,
                },
            )],
        );
        assert!(
            done[0].1 > r.t_rfc,
            "completion {} within refresh",
            done[0].1
        );
        let mut s = StatsReport::new();
        v.report("v.", &mut s);
        assert_eq!(s.get("v.refresh_delays"), Some(1.0));
    }

    #[test]
    fn closed_page_never_row_hits() {
        let cfg = HmcConfig {
            page_policy: crate::config::PagePolicy::Closed,
            refresh: None,
            ..HmcConfig::scaled()
        };
        let mut v = Vault::new(&cfg);
        let b = block_at(&cfg, 0, 0);
        let mk = |id| VaultIn {
            id: ReqId(id),
            block: b,
            write: false,
        };
        drive(&mut v, &[(0, mk(1)), (0, mk(2)), (0, mk(3))]);
        let mut s = StatsReport::new();
        v.report("v.", &mut s);
        assert_eq!(
            s.get("v.row_hits"),
            Some(0.0),
            "auto-precharge kills row hits"
        );
        assert_eq!(s.get("v.activates"), Some(3.0));
    }

    #[test]
    fn stats_accumulate() {
        let (mut v, cfg) = vault();
        let b = block_at(&cfg, 0, 0);
        drive(
            &mut v,
            &[(
                0,
                VaultIn {
                    id: ReqId(1),
                    block: b,
                    write: true,
                },
            )],
        );
        let mut s = StatsReport::new();
        v.report("v0.", &mut s);
        assert_eq!(s.get("v0.writes"), Some(1.0));
        assert_eq!(s.get("v0.activates"), Some(1.0));
        assert_eq!(s.get("v0.tsv_bytes"), Some(64.0));
    }
}
