//! The host-side HMC controller: packetizes traffic onto the daisy chain's
//! request/response channels and keeps the bandwidth counters used by
//! balanced dispatch (§7.4).

use crate::config::HmcConfig;
use pei_engine::{BwChannel, CounterId, Counters, Outbox, StatsReport};
use pei_types::ids::VaultLoc;
use pei_types::packet::PacketKind;
use pei_types::{BlockAddr, Cycle, FlitCount, PimCmd, PimOut, ReqId, FLIT_BYTES};

/// Host-side inputs to the controller.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlIn {
    /// Block read (L3 miss fill).
    Read {
        /// Transaction id.
        id: ReqId,
        /// Block to fetch.
        block: BlockAddr,
    },
    /// Block writeback (fire-and-forget).
    Write {
        /// Block to write.
        block: BlockAddr,
    },
    /// PIM operation offload from the PMU.
    Pim {
        /// The command packet.
        cmd: PimCmd,
    },
}

/// Memory-side completions entering the controller on the response link.
#[derive(Debug, Clone, PartialEq)]
pub enum MemSideIn {
    /// A vault finished a read issued by [`CtrlIn::Read`].
    ReadDone {
        /// Echo of the id.
        id: ReqId,
        /// The block read.
        block: BlockAddr,
        /// Which cube it came from (for hop latency).
        cube: u16,
    },
    /// A memory-side PCU finished a PIM operation.
    PimDone {
        /// The completion packet.
        out: PimOut,
        /// Which cube it came from.
        cube: u16,
    },
}

/// Controller outputs.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlOut {
    /// Deliver a plain DRAM access to a vault.
    ToVault {
        /// Destination vault.
        loc: VaultLoc,
        /// The access.
        access: crate::vault::VaultIn,
        /// Delivery cycle.
        at: Cycle,
    },
    /// Deliver a PIM command to a vault's memory-side PCU.
    PimToVault {
        /// Destination vault.
        loc: VaultLoc,
        /// The command.
        cmd: PimCmd,
        /// Delivery cycle.
        at: Cycle,
    },
    /// Read data delivered back to the requesting L3 bank.
    ReadResp {
        /// Echo of the id.
        id: ReqId,
        /// The block.
        block: BlockAddr,
        /// Delivery cycle.
        at: Cycle,
    },
    /// PIM outputs delivered back to the PMU.
    PimResp {
        /// The completion packet.
        out: PimOut,
        /// Delivery cycle.
        at: Cycle,
    },
}

/// Exponentially-smoothed request/response flit counters for balanced
/// dispatch: "the counters are halved every 10 µs to calculate the
/// exponential moving average of off-chip traffic" (§7.4).
#[derive(Debug, Clone, Copy)]
pub struct BalanceCounters {
    c_req: u64,
    c_res: u64,
    window: Cycle,
    next_halve: Cycle,
}

impl BalanceCounters {
    fn new(window: Cycle) -> Self {
        BalanceCounters {
            c_req: 0,
            c_res: 0,
            window,
            next_halve: window,
        }
    }

    fn roll(&mut self, now: Cycle) {
        while now >= self.next_halve {
            self.c_req /= 2;
            self.c_res /= 2;
            self.next_halve += self.window;
        }
    }

    fn note(&mut self, now: Cycle, request: bool, flits: FlitCount) {
        self.roll(now);
        if request {
            self.c_req += flits;
        } else {
            self.c_res += flits;
        }
    }

    /// Current `(C_req, C_res)` after rolling the EMA window forward.
    pub fn sample(&mut self, now: Cycle) -> (u64, u64) {
        self.roll(now);
        (self.c_req, self.c_res)
    }
}

/// The host-side HMC controller.
///
/// # Examples
///
/// ```
/// use pei_hmc::{HmcConfig, HmcController, CtrlIn};
/// use pei_types::{BlockAddr, ReqId};
///
/// let cfg = HmcConfig::scaled();
/// let mut ctrl = HmcController::new(&cfg);
/// let mut out = pei_engine::Outbox::new();
/// ctrl.handle_host(0, CtrlIn::Read { id: ReqId(1), block: BlockAddr(0) }, &mut out);
/// assert!(matches!(out[0], pei_hmc::CtrlOut::ToVault { .. }));
/// ```
#[derive(Debug)]
pub struct HmcController {
    cfg: HmcConfig,
    req_link: BwChannel,
    res_link: BwChannel,
    balance: BalanceCounters,
    /// Reads forwarded to vaults minus responses returned: the link
    /// controller's in-flight window, for deadlock diagnostics.
    pending_reads: u64,
    counters: Counters,
    c: CtrlCounters,
}

/// Dense counter slots registered at construction (hot-path bumps are
/// indexed adds; names materialize only in [`HmcController::report`]).
#[derive(Debug, Clone, Copy)]
struct CtrlCounters {
    req_flits: CounterId,
    res_flits: CounterId,
    reads: CounterId,
    read_resps: CounterId,
    writes: CounterId,
    pims: CounterId,
}

impl CtrlCounters {
    fn register(counters: &mut Counters) -> Self {
        CtrlCounters {
            req_flits: counters.register("req_flits"),
            res_flits: counters.register("res_flits"),
            reads: counters.register("reads"),
            read_resps: counters.register("read_resps"),
            writes: counters.register("writes"),
            pims: counters.register("pim_cmds"),
        }
    }
}

impl HmcController {
    /// Balance-counter halving window. The paper halves every 10 µs
    /// (40 000 cycles at 4 GHz); we use 1 µs so the EMA tracks regime
    /// shifts at the scaled machine's lower flit rate — with the paper's
    /// window the dispatch controller oscillates between all-host and
    /// all-memory regimes instead of mixing.
    pub const BALANCE_WINDOW: Cycle = 4_000;

    /// Creates a controller for the chain described by `cfg`.
    pub fn new(cfg: &HmcConfig) -> Self {
        let mut counters = Counters::new();
        let c = CtrlCounters::register(&mut counters);
        HmcController {
            cfg: *cfg,
            req_link: BwChannel::new(cfg.link_bytes_per_cycle, cfg.link_latency),
            res_link: BwChannel::new(cfg.link_bytes_per_cycle, cfg.link_latency),
            balance: BalanceCounters::new(Self::BALANCE_WINDOW),
            pending_reads: 0,
            counters,
            c,
        }
    }

    fn send_req(&mut self, now: Cycle, kind: PacketKind, cube: u16) -> Cycle {
        let flits = kind.flits();
        self.counters.add(self.c.req_flits, flits);
        self.balance.note(now, true, flits);
        let delivered = self.req_link.transfer(now, flits * FLIT_BYTES as u64);
        delivered + self.cfg.hop_latency * cube as u64
    }

    fn send_res(&mut self, now: Cycle, kind: PacketKind, cube: u16) -> Cycle {
        let flits = kind.flits();
        self.counters.add(self.c.res_flits, flits);
        self.balance.note(now, false, flits);
        let entered = now + self.cfg.hop_latency * cube as u64;
        self.res_link.transfer(entered, flits * FLIT_BYTES as u64)
    }

    /// Handles a host-side input (from L3 banks or the PMU).
    pub fn handle_host(&mut self, now: Cycle, input: CtrlIn, out: &mut Outbox<CtrlOut>) {
        match input {
            CtrlIn::Read { id, block } => {
                self.counters.inc(self.c.reads);
                self.pending_reads += 1;
                let (loc, _, _) = self.cfg.route(block);
                let at = self.send_req(now, PacketKind::ReadReq, loc.cube.0);
                out.push(CtrlOut::ToVault {
                    loc,
                    access: crate::vault::VaultIn {
                        id,
                        block,
                        write: false,
                    },
                    at,
                });
            }
            CtrlIn::Write { block } => {
                self.counters.inc(self.c.writes);
                let (loc, _, _) = self.cfg.route(block);
                let at = self.send_req(now, PacketKind::WriteReq, loc.cube.0);
                out.push(CtrlOut::ToVault {
                    loc,
                    access: crate::vault::VaultIn {
                        id: ReqId(0),
                        block,
                        write: true,
                    },
                    at,
                });
            }
            CtrlIn::Pim { cmd } => {
                self.counters.inc(self.c.pims);
                let (loc, _, _) = self.cfg.route(cmd.block());
                let kind = PacketKind::PimReq {
                    input_bytes: cmd.input.byte_len() as u16,
                };
                let at = self.send_req(now, kind, loc.cube.0);
                out.push(CtrlOut::PimToVault { loc, cmd, at });
            }
        }
    }

    /// Handles a memory-side completion arriving on the response link.
    pub fn handle_mem_side(&mut self, now: Cycle, input: MemSideIn, out: &mut Outbox<CtrlOut>) {
        match input {
            MemSideIn::ReadDone { id, block, cube } => {
                self.counters.inc(self.c.read_resps);
                self.pending_reads = self.pending_reads.saturating_sub(1);
                let at = self.send_res(now, PacketKind::ReadResp, cube);
                out.push(CtrlOut::ReadResp { id, block, at });
            }
            MemSideIn::PimDone { out: pim_out, cube } => {
                let kind = PacketKind::PimResp {
                    output_bytes: pim_out.output.byte_len() as u16,
                };
                let at = self.send_res(now, kind, cube);
                out.push(CtrlOut::PimResp { out: pim_out, at });
            }
        }
    }

    /// Balanced-dispatch counters `(C_req, C_res)` (§7.4).
    pub fn balance(&mut self, now: Cycle) -> (u64, u64) {
        self.balance.sample(now)
    }

    /// Cumulative off-chip traffic in flits `(request, response)`.
    pub fn total_flits(&self) -> (u64, u64) {
        (
            self.counters.get(self.c.req_flits),
            self.counters.get(self.c.res_flits),
        )
    }

    /// Cumulative off-chip traffic in bytes, both directions.
    pub fn total_bytes(&self) -> u64 {
        let (req, res) = self.total_flits();
        (req + res) * FLIT_BYTES as u64
    }

    /// Reads forwarded to the vaults whose responses have not yet come
    /// back (deadlock diagnostics).
    pub fn pending_reads(&self) -> u64 {
        self.pending_reads
    }

    /// Read-credit conservation view: `(reads issued, read responses
    /// returned, reads pending)`. In a consistent controller
    /// `issued == returned + pending` at every instant — the invariant
    /// pei-system's checked mode sweeps.
    pub fn read_credit_state(&self) -> (u64, u64, u64) {
        (
            self.counters.get(self.c.reads),
            self.counters.get(self.c.read_resps),
            self.pending_reads,
        )
    }

    /// Fault hook: leaks one read credit — the in-flight window grows
    /// without a matching request, as a lost response packet would make
    /// it. Validates the link-conservation checker.
    pub fn fault_leak_read_credit(&mut self) {
        self.pending_reads += 1;
    }

    /// Labels the current counter values as the end of phase `label`
    /// (see `Counters::snapshot`).
    pub fn snapshot_phase(&mut self, label: &'static str) {
        self.counters.snapshot(label);
    }

    /// Dumps statistics under `prefix`.
    pub fn report(&self, prefix: &str, stats: &mut StatsReport) {
        self.counters.flush(prefix, stats);
    }
}

impl pei_types::snap::SnapshotState for HmcController {
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        self.req_link.save(e);
        self.res_link.save(e);
        e.u64(self.balance.c_req);
        e.u64(self.balance.c_res);
        e.u64(self.balance.next_halve);
        e.u64(self.pending_reads);
        self.counters.save(e);
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        self.req_link.load(d)?;
        self.res_link.load(d)?;
        self.balance.c_req = d.u64()?;
        self.balance.c_res = d.u64()?;
        self.balance.next_halve = d.u64()?;
        self.pending_reads = d.u64()?;
        self.counters.load(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pei_types::{OperandValue, PimOpKind};

    fn ctrl() -> HmcController {
        HmcController::new(&HmcConfig::scaled())
    }

    #[test]
    fn read_costs_16_req_80_res_bytes() {
        let mut c = ctrl();
        let mut out = Outbox::new();
        c.handle_host(
            0,
            CtrlIn::Read {
                id: ReqId(1),
                block: BlockAddr(0),
            },
            &mut out,
        );
        c.handle_mem_side(
            500,
            MemSideIn::ReadDone {
                id: ReqId(1),
                block: BlockAddr(0),
                cube: 0,
            },
            &mut out,
        );
        let (req, res) = c.total_flits();
        assert_eq!(req * FLIT_BYTES as u64, 16);
        assert_eq!(res * FLIT_BYTES as u64, 80);
    }

    #[test]
    fn write_costs_80_req_bytes() {
        let mut c = ctrl();
        let mut out = Outbox::new();
        c.handle_host(
            0,
            CtrlIn::Write {
                block: BlockAddr(0),
            },
            &mut out,
        );
        let (req, res) = c.total_flits();
        assert_eq!(req * FLIT_BYTES as u64, 80);
        assert_eq!(res, 0);
    }

    #[test]
    fn pim_add_costs_32_req_16_res_bytes() {
        // §2.2: memory-side addition sends only the 8-byte delta.
        let mut c = ctrl();
        let mut out = Outbox::new();
        c.handle_host(
            0,
            CtrlIn::Pim {
                cmd: PimCmd {
                    id: ReqId(1),
                    target: BlockAddr(0).base(),
                    op: PimOpKind::AddF64,
                    input: OperandValue::F64(0.5),
                },
            },
            &mut out,
        );
        c.handle_mem_side(
            400,
            MemSideIn::PimDone {
                out: PimOut {
                    id: ReqId(1),
                    block: BlockAddr(0),
                    output: OperandValue::None,
                },
                cube: 0,
            },
            &mut out,
        );
        let (req, res) = c.total_flits();
        assert_eq!(req * FLIT_BYTES as u64, 32);
        assert_eq!(res * FLIT_BYTES as u64, 16);
    }

    #[test]
    fn routes_to_correct_vault() {
        let cfg = HmcConfig::scaled();
        let mut c = HmcController::new(&cfg);
        let mut out = Outbox::new();
        let block = BlockAddr(0b10_0101);
        c.handle_host(
            0,
            CtrlIn::Read {
                id: ReqId(1),
                block,
            },
            &mut out,
        );
        match &out[0] {
            CtrlOut::ToVault { loc, .. } => {
                let (want, _, _) = cfg.route(block);
                assert_eq!(*loc, want);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn balance_counters_halve_over_windows() {
        let mut b = BalanceCounters::new(1000);
        b.note(0, true, 100);
        b.note(0, false, 10);
        assert_eq!(b.sample(0), (100, 10));
        assert_eq!(b.sample(1000), (50, 5));
        assert_eq!(b.sample(3000), (12, 1));
        b.note(3000, false, 100);
        let (req, res) = b.sample(3000);
        assert!(res > req);
    }

    #[test]
    fn link_serializes_heavy_traffic() {
        let mut c = ctrl();
        let mut out = Outbox::new();
        // Many back-to-back writes (80 B each at 10 B/cycle = 8 cycles each).
        for i in 0..10 {
            c.handle_host(
                0,
                CtrlIn::Write {
                    block: BlockAddr(i * 64),
                },
                &mut out,
            );
        }
        let times: Vec<Cycle> = out
            .iter()
            .map(|o| match o {
                CtrlOut::ToVault { at, .. } => *at,
                _ => unreachable!(),
            })
            .collect();
        // Deliveries are spaced by serialization, not simultaneous.
        assert!(times.windows(2).all(|w| w[1] > w[0]));
        assert!(times[9] - times[0] >= 9 * 8);
    }
}
