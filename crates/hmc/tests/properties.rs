//! Property-based tests of the HMC model: every queued access is
//! eventually served exactly once, FR-FCFS never reorders across
//! correctness boundaries (there are none — accesses are independent —
//! so the property is completeness), and link accounting is conserved.

use pei_hmc::{CtrlIn, HmcConfig, HmcController, Vault, VaultIn, VaultOut};
use pei_types::{BlockAddr, ReqId, FLIT_BYTES};
use proptest::prelude::*;

/// Drains a vault to completion, returning completion times by id.
fn drive(v: &mut Vault, reqs: &[(u64, VaultIn)]) -> Vec<(ReqId, u64)> {
    let mut done = Vec::new();
    let mut wakes: Vec<u64> = Vec::new();
    let mut out = pei_engine::Outbox::new();
    for &(t, r) in reqs {
        v.handle_access(t, r, &mut out);
    }
    let mut guard = 0;
    loop {
        guard += 1;
        assert!(guard < 1_000_000, "vault drain did not converge");
        for o in out.drain() {
            match o {
                VaultOut::Done { id, at, .. } => done.push((id, at)),
                VaultOut::Wake { at } => wakes.push(at),
            }
        }
        wakes.sort_unstable();
        match wakes.first().copied() {
            Some(t) => {
                wakes.remove(0);
                v.wake(t, &mut out);
            }
            None => break,
        }
    }
    done
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every access is served exactly once, never before it arrived, and
    /// the vault ends idle.
    #[test]
    fn vault_serves_everything_exactly_once(
        reqs in proptest::collection::vec((0u64..500, 0u64..4096, any::<bool>()), 1..60)
    ) {
        let cfg = HmcConfig::scaled();
        let mut v = Vault::new(&cfg);
        let inputs: Vec<(u64, VaultIn)> = reqs
            .iter()
            .enumerate()
            .map(|(i, &(t, blk, write))| {
                (
                    t,
                    VaultIn {
                        id: ReqId(i as u64),
                        block: BlockAddr(blk),
                        write,
                    },
                )
            })
            .collect();
        let done = drive(&mut v, &inputs);
        prop_assert_eq!(done.len(), inputs.len());
        let mut ids: Vec<u64> = done.iter().map(|(id, _)| id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), inputs.len(), "duplicate completions");
        for (id, at) in &done {
            let (arrived, _) = inputs[id.0 as usize];
            prop_assert!(*at > arrived, "completion before arrival");
        }
        prop_assert_eq!(v.backlog(), 0);
        prop_assert_eq!(v.accesses(), inputs.len() as u64);
    }

    /// Row hits are never slower than row misses for back-to-back
    /// same-bank accesses.
    #[test]
    fn row_hit_no_slower_than_conflict(row_a in 0u64..8, row_b in 0u64..8) {
        let cfg = HmcConfig::scaled();
        let blocks_per_row = (cfg.row_bytes / 64) as u64;
        let stride = (cfg.total_vaults() * cfg.banks_per_vault) as u64;
        // Same vault (0), same bank (0), chosen row.
        let block_of = |row: u64| BlockAddr(row * blocks_per_row * stride);
        let time = |rows: [u64; 2]| {
            let mut v = Vault::new(&cfg);
            let reqs: Vec<(u64, VaultIn)> = rows
                .iter()
                .enumerate()
                .map(|(i, &r)| {
                    (
                        0,
                        VaultIn {
                            id: ReqId(i as u64),
                            block: block_of(r),
                            write: false,
                        },
                    )
                })
                .collect();
            drive(&mut v, &reqs).iter().map(|&(_, at)| at).max().unwrap()
        };
        let same = time([row_a, row_a]);
        let diff = time([row_a, row_b]);
        if row_a == row_b {
            prop_assert_eq!(same, diff);
        } else {
            prop_assert!(same <= diff, "row hit slower than conflict");
        }
    }

    /// Controller flit accounting: total wire bytes equal the sum of the
    /// per-packet costs, independent of interleaving.
    #[test]
    fn controller_conserves_flits(ops in proptest::collection::vec((0u64..10_000, any::<bool>()), 1..50)) {
        let cfg = HmcConfig::scaled();
        let mut ctrl = HmcController::new(&cfg);
        let mut out = pei_engine::Outbox::new();
        let mut expect_req = 0u64;
        for &(blk, write) in &ops {
            if write {
                ctrl.handle_host(0, CtrlIn::Write { block: BlockAddr(blk) }, &mut out);
                expect_req += 5; // 80-byte write request
            } else {
                ctrl.handle_host(
                    0,
                    CtrlIn::Read {
                        id: ReqId(blk),
                        block: BlockAddr(blk),
                    },
                    &mut out,
                );
                expect_req += 1; // 16-byte read request
            }
        }
        let (req, res) = ctrl.total_flits();
        prop_assert_eq!(req, expect_req);
        prop_assert_eq!(res, 0, "no responses yet");
        prop_assert_eq!(ctrl.total_bytes(), expect_req * FLIT_BYTES as u64);
    }
}
