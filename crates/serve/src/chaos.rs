//! Seeded chaos plans: deterministic byte scripts for misbehaving
//! clients.
//!
//! The overload tentpole is only trustworthy if it survives *hostile*
//! traffic, and hostile traffic is only testable if it is reproducible.
//! A [`ChaosPlan`] expands a single seed into N client scripts — every
//! byte chunk, torn-write boundary, pause, and deadline is a pure
//! function of the seed (xoshiro256**, the workspace-standard stream) —
//! so a failing run replays exactly from its seed. The harness in
//! `tests/chaos.rs` executes the same plan over an in-process pipe
//! (the stdio framing), a Unix socket, and TCP, and asserts the
//! transport-independent invariants: no leaked worker slot, the
//! accounting partition `submitted == completed + failed + cancelled +
//! deadline_exceeded + disconnect_cancelled`, a drain that ends in
//! `bye`, and a concurrent well-behaved client whose results stay
//! byte-identical to the one-shot binary.
//!
//! Five behaviors cover the failure modes the daemon must shed:
//!
//! | behavior | what it abuses | what must hold |
//! |---|---|---|
//! | [`MidFrameDisconnect`] | slams the socket inside a frame | torn tail → one `bad-frame` reject; acked job reaped |
//! | [`TornWrites`] | splits frames at arbitrary byte boundaries | reassembled frames behave exactly like whole ones |
//! | [`SlowReader`] | drains one byte at a time, then slams | heartbeats shed, terminals kept, job reaped on slam |
//! | [`SubmitFlood`] | bursts past the admission bound | overflow rejected `queue-full`, accepted jobs all terminal |
//! | [`DeadlineBuster`] | submits long jobs with tiny budgets | every one ends `deadline-exceeded`, caches untouched |
//!
//! [`MidFrameDisconnect`]: ChaosBehavior::MidFrameDisconnect
//! [`TornWrites`]: ChaosBehavior::TornWrites
//! [`SlowReader`]: ChaosBehavior::SlowReader
//! [`SubmitFlood`]: ChaosBehavior::SubmitFlood
//! [`DeadlineBuster`]: ChaosBehavior::DeadlineBuster

use pei_engine::rng::SimRng;
use pei_types::wire::{Priority, Recipe, Request};

/// How one chaos client misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosBehavior {
    /// Submits a long job, then disconnects in the middle of a second
    /// submit frame without reading anything.
    MidFrameDisconnect,
    /// Submits well-formed quick jobs, but delivers the bytes in
    /// arbitrarily torn chunks with pauses between them.
    TornWrites,
    /// Submits a long job and drains responses one byte at a time,
    /// then disconnects with the job still in flight.
    SlowReader,
    /// Bursts more quick submissions than the admission bound allows.
    SubmitFlood,
    /// Submits long jobs whose wall-clock deadlines cannot be met.
    DeadlineBuster,
}

/// All five behaviors, in the order [`ChaosPlan::generate`] cycles
/// through before shuffling — a plan with at least this many clients
/// exercises every behavior.
pub const ALL_BEHAVIORS: [ChaosBehavior; 5] = [
    ChaosBehavior::MidFrameDisconnect,
    ChaosBehavior::TornWrites,
    ChaosBehavior::SlowReader,
    ChaosBehavior::SubmitFlood,
    ChaosBehavior::DeadlineBuster,
];

/// The workload knobs a plan's scripts are rendered against — the
/// harness picks these to match the daemon under test.
#[derive(Debug, Clone)]
pub struct ChaosKnobs {
    /// The daemon's admission bound; floods are sized well past it.
    pub max_queue: u64,
    /// Deadline (milliseconds) deadline-buster jobs carry; must be far
    /// below the long recipe's runtime.
    pub deadline_ms: u64,
    /// A recipe that completes quickly (flood and torn-write fodder).
    pub quick: Recipe,
    /// A recipe that runs long enough to still be in flight when its
    /// client disconnects or its deadline lapses.
    pub long: Recipe,
}

/// One write: wait `pause_ms`, then write `bytes` and flush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteStep {
    /// Milliseconds to sleep before this chunk.
    pub pause_ms: u64,
    /// The raw bytes (possibly a fraction of a frame, or several).
    pub bytes: Vec<u8>,
}

/// How a chaos client treats the daemon's response stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStyle {
    /// Reads frames normally until every submission has resolved.
    Drain,
    /// Reads one byte at a time with `pause_ms` between bytes, for at
    /// most `max_bytes` bytes, then stops reading.
    ByteAtATime {
        /// Milliseconds between single-byte reads.
        pause_ms: u64,
        /// Bytes to drain before giving up on the stream.
        max_bytes: u64,
    },
    /// Never reads at all.
    None,
}

/// A fully rendered client script: what to write, how to read, and the
/// bookkeeping the harness needs to know what the daemon owes (or
/// doesn't owe) this client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosScript {
    /// Byte chunks to write, in order.
    pub writes: Vec<WriteStep>,
    /// Response-stream treatment.
    pub read: ReadStyle,
    /// Drop the connection when the writes (and any reading) are done,
    /// without waiting for outstanding frames.
    pub slam: bool,
    /// Complete submit frames this script delivers; each resolves as
    /// either ack + terminal or a job-less rejection.
    pub submits: u64,
    /// The script ends inside a frame: the daemon sees exactly one
    /// trailing `bad-frame` rejection at EOF.
    pub torn_tail: bool,
}

/// One misbehaving client: a behavior plus the private seed its script
/// is rendered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosClient {
    /// Position in the plan (stable across transports; used for
    /// labelling and tenant names).
    pub index: usize,
    /// What this client does wrong.
    pub behavior: ChaosBehavior,
    /// Seed for the script's own byte-level choices.
    pub seed: u64,
}

/// A deterministic fleet of misbehaving clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed everything derives from.
    pub seed: u64,
    /// The clients, in launch order.
    pub clients: Vec<ChaosClient>,
}

impl ChaosPlan {
    /// Expands `seed` into `n` clients: behaviors cycle through
    /// [`ALL_BEHAVIORS`] (so `n >= 5` exercises all of them), launch
    /// order is shuffled, and each client draws a private seed. Pure:
    /// the same inputs always yield the same plan.
    pub fn generate(seed: u64, n: usize) -> ChaosPlan {
        let mut rng = SimRng::seed_from(seed ^ 0xc4a0_5c4a_05c4_a05c);
        let mut behaviors: Vec<ChaosBehavior> = (0..n)
            .map(|i| ALL_BEHAVIORS[i % ALL_BEHAVIORS.len()])
            .collect();
        rng.shuffle(&mut behaviors);
        let clients = behaviors
            .into_iter()
            .enumerate()
            .map(|(index, behavior)| ChaosClient {
                index,
                behavior,
                seed: rng.next_u64(),
            })
            .collect();
        ChaosPlan { seed, clients }
    }
}

impl ChaosClient {
    /// Renders this client's byte script against `knobs`. Pure: the
    /// same client and knobs always yield the same steps, byte for
    /// byte.
    pub fn script(&self, knobs: &ChaosKnobs) -> ChaosScript {
        let mut rng = SimRng::seed_from(self.seed);
        let tenant = format!("chaos-{}", self.index);
        match self.behavior {
            ChaosBehavior::MidFrameDisconnect => {
                let whole = submit_line(&knobs.long, &tenant, None);
                let torn = submit_line(&knobs.long, &tenant, None);
                // Cut strictly inside the JSON (never at 0, never at or
                // past the closing brace) so the tail can never parse.
                let cut = 1 + rng.gen_range(torn.len() as u64 - 2) as usize;
                ChaosScript {
                    writes: vec![
                        WriteStep {
                            pause_ms: 0,
                            bytes: whole.into_bytes(),
                        },
                        WriteStep {
                            pause_ms: 1 + rng.gen_range(4),
                            bytes: torn.into_bytes()[..cut].to_vec(),
                        },
                    ],
                    read: ReadStyle::None,
                    slam: true,
                    submits: 1,
                    torn_tail: true,
                }
            }
            ChaosBehavior::TornWrites => {
                let n = 2 + rng.gen_range(2);
                let mut bytes = Vec::new();
                for _ in 0..n {
                    bytes.extend_from_slice(submit_line(&knobs.quick, &tenant, None).as_bytes());
                }
                // Split the whole byte stream at arbitrary boundaries —
                // including mid-frame and mid-token — with short pauses.
                let mut writes = Vec::new();
                let mut rest = bytes.as_slice();
                while !rest.is_empty() {
                    let take = (1 + rng.gen_range(23)).min(rest.len() as u64) as usize;
                    writes.push(WriteStep {
                        pause_ms: rng.gen_range(3),
                        bytes: rest[..take].to_vec(),
                    });
                    rest = &rest[take..];
                }
                ChaosScript {
                    writes,
                    read: ReadStyle::Drain,
                    slam: false,
                    submits: n,
                    torn_tail: false,
                }
            }
            ChaosBehavior::SlowReader => ChaosScript {
                writes: vec![WriteStep {
                    pause_ms: 0,
                    bytes: submit_line(&knobs.long, &tenant, None).into_bytes(),
                }],
                read: ReadStyle::ByteAtATime {
                    pause_ms: 1 + rng.gen_range(3),
                    max_bytes: 16 + rng.gen_range(32),
                },
                slam: true,
                submits: 1,
                torn_tail: false,
            },
            ChaosBehavior::SubmitFlood => {
                let n = knobs.max_queue * 2 + 8 + rng.gen_range(8);
                let mut bytes = Vec::new();
                for _ in 0..n {
                    bytes.extend_from_slice(submit_line(&knobs.quick, &tenant, None).as_bytes());
                }
                ChaosScript {
                    // One burst: the whole flood lands faster than the
                    // workers can drain it.
                    writes: vec![WriteStep { pause_ms: 0, bytes }],
                    read: ReadStyle::Drain,
                    slam: false,
                    submits: n,
                    torn_tail: false,
                }
            }
            ChaosBehavior::DeadlineBuster => {
                let n = 1 + rng.gen_range(2);
                let writes = (0..n)
                    .map(|_| WriteStep {
                        pause_ms: rng.gen_range(3),
                        bytes: submit_line(
                            &knobs.long,
                            &tenant,
                            Some(knobs.deadline_ms + rng.gen_range(50)),
                        )
                        .into_bytes(),
                    })
                    .collect();
                ChaosScript {
                    writes,
                    read: ReadStyle::Drain,
                    slam: false,
                    submits: n,
                    torn_tail: false,
                }
            }
        }
    }
}

/// Encodes one submit frame (with trailing newline) for `recipe` under
/// `tenant`.
fn submit_line(recipe: &Recipe, tenant: &str, deadline_ms: Option<u64>) -> String {
    let mut line = Request::Submit {
        recipe: recipe.clone(),
        trace: None,
        tenant: Some(tenant.to_owned()),
        priority: Priority::Normal,
        deadline_ms,
    }
    .encode();
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knobs() -> ChaosKnobs {
        let mut quick = Recipe::new("atf", "small", "la");
        quick.budget = Some(2_000);
        let mut long = Recipe::new("pr", "medium", "la");
        long.budget = Some(50_000_000);
        ChaosKnobs {
            max_queue: 12,
            deadline_ms: 150,
            quick,
            long,
        }
    }

    #[test]
    fn plans_are_deterministic_and_cover_every_behavior() {
        let a = ChaosPlan::generate(42, 7);
        let b = ChaosPlan::generate(42, 7);
        assert_eq!(a, b, "same seed, same plan");
        let k = knobs();
        for (ca, cb) in a.clients.iter().zip(&b.clients) {
            assert_eq!(ca.script(&k), cb.script(&k), "scripts render purely");
        }
        for behavior in ALL_BEHAVIORS {
            assert!(
                a.clients.iter().any(|c| c.behavior == behavior),
                "{behavior:?} missing from a 7-client plan"
            );
        }
        assert_ne!(
            ChaosPlan::generate(43, 7),
            a,
            "different seeds differ somewhere"
        );
    }

    #[test]
    fn torn_tails_never_parse_and_whole_frames_always_do() {
        let k = knobs();
        let plan = ChaosPlan::generate(7, 10);
        for client in &plan.clients {
            let script = client.script(&k);
            let stream: Vec<u8> = script
                .writes
                .iter()
                .flat_map(|w| w.bytes.iter().copied())
                .collect();
            let text = String::from_utf8(stream).expect("scripts are valid UTF-8");
            let mut submits = 0;
            let mut torn = 0;
            for line in text.split('\n').filter(|l| !l.is_empty()) {
                match Request::decode(line) {
                    Ok(Request::Submit { .. }) => submits += 1,
                    Ok(other) => panic!("unexpected frame {other:?}"),
                    Err(_) => torn += 1,
                }
            }
            assert_eq!(submits, script.submits, "{:?}", client.behavior);
            assert_eq!(torn, u64::from(script.torn_tail), "{:?}", client.behavior);
        }
    }

    #[test]
    fn floods_overrun_the_admission_bound() {
        let k = knobs();
        let plan = ChaosPlan::generate(1, 10);
        let flood = plan
            .clients
            .iter()
            .find(|c| c.behavior == ChaosBehavior::SubmitFlood)
            .expect("a 10-client plan has a flood");
        assert!(flood.script(&k).submits > 2 * k.max_queue);
    }
}
