//! `pei-serve` — the PEI simulator as a daemon.
//!
//! ```text
//! pei-serve --socket /tmp/pei.sock          # accept Unix connections
//! pei-serve --tcp 127.0.0.1:7745           # accept TCP connections
//! pei-serve --socket /tmp/pei.sock --tcp 0.0.0.0:7745   # both at once
//! pei-serve --stdio                         # one session on stdin/stdout
//! ```
//!
//! Submit work with `pei-sim --submit <socket-path|host:port> ...` or by
//! writing newline-delimited JSON request frames (DESIGN.md §12).

use pei_bench::runner::ForkPolicy;
use pei_serve::{Daemon, ServeConfig, DEFAULT_CACHE_BYTES};
use std::io::{BufReader, ErrorKind, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
usage: pei-serve (--socket PATH | --tcp ADDR | --stdio) [options]

  --socket PATH   listen for connections on a Unix socket at PATH
  --tcp ADDR      listen for TCP connections on ADDR (host:port);
                  may be combined with --socket to serve both
  --stdio         serve exactly one session on stdin/stdout, then exit
  --workers N     worker threads executing jobs (default: CPU count)
  --slice N       cancellation/heartbeat granularity in simulated
                  cycles (default: 1000000)
  --no-fork       disable the warm-fork snapshot cache
  --fork-min N    fork only when the warmup prefix is at least N cycles
                  (default: 100000; 0 forks every eligible group)
  --cache-bytes N byte budget for resident warm snapshots; LRU entries
                  are evicted past it (default: 268435456 = 256 MiB;
                  0 = unbounded)
  --max-queue N   admission bound: total queued jobs across all
                  sessions; submits past it are rejected with a
                  `queue-full` error frame (default: 1024;
                  0 = unbounded)
  --deadline-ms N default wall-clock budget per job in milliseconds,
                  applied when a submit carries no `deadline_ms` of its
                  own; jobs past budget stop at the next slice boundary
                  with a `deadline-exceeded` error (default: 0 = none)
";

/// One listening transport: anything that can hand back a buffered
/// reader/writer pair per connection. Both listeners run non-blocking so
/// the accept loops can poll the daemon's shutdown flag.
trait Listener: Send + 'static {
    fn accept_session(&self) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)>;
    fn describe(&self) -> String;
}

impl Listener for UnixListener {
    fn accept_session(&self) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        let (stream, _) = self.accept()?;
        let reading = stream.try_clone()?;
        Ok((Box::new(reading), Box::new(stream)))
    }
    fn describe(&self) -> String {
        match self.local_addr() {
            Ok(a) => format!("{a:?}"),
            Err(_) => "unix socket".to_owned(),
        }
    }
}

impl Listener for TcpListener {
    fn accept_session(&self) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        let (stream, _) = self.accept()?;
        stream.set_nodelay(true).ok(); // frames are latency-sensitive lines
        let reading = stream.try_clone()?;
        Ok((Box::new(reading), Box::new(stream)))
    }
    fn describe(&self) -> String {
        match self.local_addr() {
            Ok(a) => format!("tcp {a}"),
            Err(_) => "tcp".to_owned(),
        }
    }
}

/// Accepts connections until the daemon's shutdown flag flips, serving
/// each on its own thread. Identical for Unix and TCP: `Daemon::serve`
/// only needs a `BufRead`/`Write` pair.
fn accept_loop(daemon: &Arc<Daemon>, listener: impl Listener) {
    loop {
        if daemon.shutdown_requested() {
            break;
        }
        match listener.accept_session() {
            Ok((reader, writer)) => {
                let daemon = Arc::clone(daemon);
                std::thread::spawn(move || {
                    daemon.serve(BufReader::new(reader), writer);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("pei-serve: accept on {} failed: {e}", listener.describe());
                break;
            }
        }
    }
}

fn main() {
    let mut socket: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut stdio = false;
    let mut workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut slice: u64 = 1_000_000;
    let mut fork = ForkPolicy::default();
    let mut cache_bytes: u64 = DEFAULT_CACHE_BYTES;
    let mut max_queue: u64 = pei_serve::DEFAULT_MAX_QUEUE;
    let mut deadline_ms: u64 = 0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--socket" => socket = Some(value("--socket")),
            "--tcp" => tcp = Some(value("--tcp")),
            "--stdio" => stdio = true,
            "--workers" => workers = parse(&value("--workers"), "--workers"),
            "--slice" => slice = parse(&value("--slice"), "--slice"),
            "--no-fork" => fork = ForkPolicy::disabled(),
            "--fork-min" => fork.min_prefix = parse(&value("--fork-min"), "--fork-min"),
            "--cache-bytes" => cache_bytes = parse(&value("--cache-bytes"), "--cache-bytes"),
            "--max-queue" => max_queue = parse(&value("--max-queue"), "--max-queue"),
            "--deadline-ms" => deadline_ms = parse(&value("--deadline-ms"), "--deadline-ms"),
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument `{other}`")),
        }
    }
    let listening = socket.is_some() || tcp.is_some();
    if stdio == listening {
        fail("pick --stdio, or at least one of --socket PATH / --tcp ADDR");
    }

    let cfg = ServeConfig {
        workers,
        slice,
        fork,
        cache_bytes: if cache_bytes == 0 {
            None
        } else {
            Some(cache_bytes)
        },
        max_queue: if max_queue == 0 {
            None
        } else {
            Some(max_queue)
        },
        deadline_ms: if deadline_ms == 0 {
            None
        } else {
            Some(deadline_ms)
        },
        ..ServeConfig::default()
    };
    if stdio {
        let daemon = Daemon::start(cfg);
        let stdin = std::io::stdin();
        daemon.serve(stdin.lock(), std::io::stdout());
        return; // dropping the daemon drains and joins the workers
    }

    let daemon = Arc::new(Daemon::start(cfg));
    let mut loops = Vec::new();
    if let Some(addr) = &tcp {
        let listener = TcpListener::bind(addr)
            .unwrap_or_else(|e| fail(&format!("can't bind tcp `{addr}`: {e}")));
        listener
            .set_nonblocking(true)
            .unwrap_or_else(|e| fail(&format!("can't poll tcp `{addr}`: {e}")));
        eprintln!(
            "pei-serve: listening on tcp {}",
            listener
                .local_addr()
                .map_or_else(|_| addr.clone(), |a| a.to_string())
        );
        let daemon = Arc::clone(&daemon);
        loops.push(std::thread::spawn(move || accept_loop(&daemon, listener)));
    }
    if let Some(path) = &socket {
        let _ = std::fs::remove_file(path);
        let listener =
            UnixListener::bind(path).unwrap_or_else(|e| fail(&format!("can't bind `{path}`: {e}")));
        listener
            .set_nonblocking(true)
            .unwrap_or_else(|e| fail(&format!("can't poll `{path}`: {e}")));
        eprintln!("pei-serve: listening on {path}");
        let daemon = Arc::clone(&daemon);
        loops.push(std::thread::spawn(move || accept_loop(&daemon, listener)));
    }
    for l in loops {
        let _ = l.join();
    }
    if let Some(path) = &socket {
        let _ = std::fs::remove_file(path);
    }
}

fn parse<T: std::str::FromStr>(s: &str, name: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("{name} got `{s}`, expected a number")))
}

fn fail(msg: &str) -> ! {
    eprintln!("pei-serve: {msg}\n\n{USAGE}");
    std::process::exit(2);
}
