//! `pei-serve` — the PEI simulator as a daemon.
//!
//! ```text
//! pei-serve --socket /tmp/pei.sock          # accept connections
//! pei-serve --stdio                         # one session on stdin/stdout
//! ```
//!
//! Submit work with `pei-sim --submit <socket> ...` or by writing
//! newline-delimited JSON request frames (DESIGN.md §12).

use pei_bench::runner::ForkPolicy;
use pei_serve::{Daemon, ServeConfig};
use std::io::{BufReader, ErrorKind};
use std::os::unix::net::UnixListener;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
usage: pei-serve (--socket PATH | --stdio) [options]

  --socket PATH   listen for connections on a Unix socket at PATH
  --stdio         serve exactly one session on stdin/stdout, then exit
  --workers N     worker threads executing jobs (default: CPU count)
  --slice N       cancellation/heartbeat granularity in simulated
                  cycles (default: 1000000)
  --no-fork       disable the warm-fork snapshot cache
  --fork-min N    fork only when the warmup prefix is at least N cycles
                  (default: 100000; 0 forks every eligible group)
";

fn main() {
    let mut socket: Option<String> = None;
    let mut stdio = false;
    let mut workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut slice: u64 = 1_000_000;
    let mut fork = ForkPolicy::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--socket" => socket = Some(value("--socket")),
            "--stdio" => stdio = true,
            "--workers" => workers = parse(&value("--workers"), "--workers"),
            "--slice" => slice = parse(&value("--slice"), "--slice"),
            "--no-fork" => fork = ForkPolicy::disabled(),
            "--fork-min" => fork.min_prefix = parse(&value("--fork-min"), "--fork-min"),
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument `{other}`")),
        }
    }
    if stdio == socket.is_some() {
        fail("pick exactly one of --socket PATH or --stdio");
    }

    let cfg = ServeConfig {
        workers,
        slice,
        fork,
    };
    if stdio {
        let daemon = Daemon::start(cfg);
        let stdin = std::io::stdin();
        daemon.serve(stdin.lock(), std::io::stdout());
        return; // dropping the daemon drains and joins the workers
    }

    let path = socket.expect("checked above");
    let _ = std::fs::remove_file(&path);
    let listener =
        UnixListener::bind(&path).unwrap_or_else(|e| fail(&format!("can't bind `{path}`: {e}")));
    listener
        .set_nonblocking(true)
        .unwrap_or_else(|e| fail(&format!("can't poll `{path}`: {e}")));
    eprintln!("pei-serve: listening on {path}");
    let daemon = Arc::new(Daemon::start(cfg));
    loop {
        if daemon.shutdown_requested() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let daemon = Arc::clone(&daemon);
                std::thread::spawn(move || {
                    let Ok(reading) = stream.try_clone() else {
                        return;
                    };
                    daemon.serve(BufReader::new(reading), stream);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("pei-serve: accept failed: {e}");
                break;
            }
        }
    }
    let _ = std::fs::remove_file(&path);
}

fn parse<T: std::str::FromStr>(s: &str, name: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("{name} got `{s}`, expected a number")))
}

fn fail(msg: &str) -> ! {
    eprintln!("pei-serve: {msg}\n\n{USAGE}");
    std::process::exit(2);
}
