//! `pei-serve`: the simulator as a long-running service (DESIGN.md §12).
//!
//! One-shot binaries pay the full startup bill per cell: process spawn,
//! input-graph construction, and — when several cells share a warm
//! prefix — the same warmup replayed once per cell. A daemon pays those
//! costs once per *process*: the [`Daemon`] keeps the process-wide
//! `Arc<Graph>` input cache and a resident
//! [`ForkCache`] of warm snapshots alive
//! across submissions, so the tenth job of a sweep starts where the
//! first one left the machine. Residency is bounded: the snapshot cache
//! evicts least-recently-used entries past its byte budget
//! ([`ServeConfig::cache_bytes`]), trading warmup time for memory
//! without ever changing a result byte.
//!
//! The wire protocol is newline-delimited JSON over a Unix socket, TCP,
//! or stdio; the frame types live in [`pei_types::wire`] and the
//! grammar in DESIGN.md §12. A session submits recipes — optionally
//! tagged with a `tenant` and a `priority` band — and receives, per
//! job: one `ack` carrying the job id, `progress` heartbeats while the
//! run advances, and exactly one terminal frame — `result`,
//! `cancelled`, or a structured `error`. Malformed frames and failed
//! runs (checked-mode violations, stalls, cycle limits, even a worker
//! panic) come back as `error` frames; the daemon never dies on a bad
//! submission.
//!
//! Scheduling is strict across priority bands and fair within one:
//! each band keeps a sub-queue per tenant, drained by deficit
//! round-robin with unit job cost, so a tenant flooding the queue
//! cannot starve the others — under saturation any two
//! continuously-backlogged tenants' completion counts stay within
//! `workers + 1` jobs of each other (the DRR bound with quantum 1).
//!
//! The byte-identity contract holds end to end: the `stats` text inside
//! a `result` frame equals the one-shot binary's rendering of the same
//! recipe, whichever cache or scheduling path served the job (pinned by
//! this crate's tests and the CI serve-smoke job).
//!
//! Every resource a client can consume is bounded, with a defined
//! shedding order (DESIGN.md §12 "Overload semantics"): submissions
//! past [`ServeConfig::max_queue`] are rejected with a structured
//! `queue-full` error instead of queueing; every job can carry a
//! wall-clock `deadline_ms` budget (or inherit
//! [`ServeConfig::deadline_ms`]) enforced at slice boundaries exactly
//! like cancellation; a slow reader's `progress` heartbeats are
//! coalesced once its writer queue fills (never `ack` or terminal
//! frames); and a session that disconnects has its queued and in-flight
//! jobs cancelled so orphaned work stops burning worker slots. The
//! seeded chaos harness in [`chaos`] and `tests/chaos.rs` drives
//! misbehaving clients over every transport to pin those bounds.

pub mod chaos;

use pei_bench::runner::{ForkPolicy, RunSpec};
use pei_bench::service::{resolve_capture, resolve_recipe, ForkCache, Stopped};
use pei_bench::tracecap::CaptureSpec;
use pei_system::RunResult;
use pei_trace::Recorder;
use pei_types::wire::{
    ForkCacheStat, Priority, Recipe, Request, Response, ResultFrame, StatsFrame, TenantStat,
    WorkerStat,
};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default byte budget for the resident warm-snapshot cache.
pub const DEFAULT_CACHE_BYTES: u64 = 256 << 20;

/// Default bound on queued jobs (admission control): submissions past
/// it are rejected with a `queue-full` error frame.
pub const DEFAULT_MAX_QUEUE: u64 = 1024;

/// Default bound on frames queued to one session's writer before
/// `progress` heartbeats start being coalesced.
pub const DEFAULT_WRITER_QUEUE: usize = 256;

/// Tenant name used when a submission names none.
pub const DEFAULT_TENANT: &str = "default";

/// Queue-wait samples retained per tenant for the p50/p95 figures in
/// the `stats` frame (a sliding window of the most recent waits).
const WAIT_SAMPLES: usize = 512;

/// The pseudo fault kind that makes the executing worker panic mid-job.
/// Like the simulator fault kinds it is for tests only (the drain-path
/// pinning in this crate's suite and CI); it is intercepted by the
/// daemon before recipe resolution and never reaches the simulator.
pub const PANIC_WORKER_FAULT: &str = "panic-worker";

/// How a [`Daemon`] is provisioned.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing jobs (bounds concurrency; `max_queue`
    /// bounds backlog).
    pub workers: usize,
    /// Cancellation/heartbeat granularity: jobs pause every this many
    /// simulated cycles to check their cancel flag and emit a
    /// `progress` frame. Slicing never changes results — only where the
    /// run loop pauses.
    pub slice: u64,
    /// Warm-fork policy for the resident snapshot cache.
    pub fork: ForkPolicy,
    /// Byte budget for resident warm snapshots; LRU entries are evicted
    /// past it. `None` = unbounded (the pre-budget behavior).
    pub cache_bytes: Option<u64>,
    /// Admission control: total queued jobs the daemon accepts.
    /// Submissions arriving with the queue at the bound get a terminal
    /// `queue-full` error frame instead of enqueueing. `None` =
    /// unbounded.
    pub max_queue: Option<u64>,
    /// Default wall-clock budget, in milliseconds from the ack, for
    /// jobs that don't carry their own `deadline_ms`. Past it, a job is
    /// abandoned at the next slice boundary with a terminal
    /// `deadline-exceeded` error. `None` = no default budget.
    pub deadline_ms: Option<u64>,
    /// Frames queued to one session's writer before `progress`
    /// heartbeats are coalesced (slow-client backpressure). Ack,
    /// terminal, `stats`, and `bye` frames always queue — their count
    /// is bounded by the session's own submissions.
    pub writer_queue: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 1,
            slice: 1_000_000,
            fork: ForkPolicy::default(),
            cache_bytes: Some(DEFAULT_CACHE_BYTES),
            max_queue: Some(DEFAULT_MAX_QUEUE),
            deadline_ms: None,
            writer_queue: DEFAULT_WRITER_QUEUE,
        }
    }
}

/// Why a job's cancel flag was raised — the first cause wins, so the
/// accounting stays stable when a client `cancel` races a disconnect
/// reap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopCause {
    /// A client `cancel` frame.
    Client,
    /// The submitting session's reader hit EOF or its writer failed.
    Disconnect,
}

/// A job's cancellation handle: the flag the engine polls at slice
/// boundaries, plus the cause that raised it first (for the
/// `cancelled` vs `disconnect-cancelled` counters).
struct JobCtl {
    cancel: AtomicBool,
    /// 0 = not stopped, 1 = [`StopCause::Client`], 2 =
    /// [`StopCause::Disconnect`].
    cause: AtomicU8,
}

impl JobCtl {
    fn new() -> JobCtl {
        JobCtl {
            cancel: AtomicBool::new(false),
            cause: AtomicU8::new(0),
        }
    }

    fn stop(&self, cause: StopCause) {
        let code = match cause {
            StopCause::Client => 1,
            StopCause::Disconnect => 2,
        };
        let _ = self
            .cause
            .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
        self.cancel.store(true, Ordering::Relaxed);
    }

    fn cause(&self) -> Option<StopCause> {
        match self.cause.load(Ordering::Relaxed) {
            1 => Some(StopCause::Client),
            2 => Some(StopCause::Disconnect),
            _ => None,
        }
    }
}

/// A queued unit of work: the resolved spec plus everything needed to
/// report back to the submitting session.
struct Job {
    id: u64,
    spec: RunSpec,
    /// `Some` when the submission asked for a `.petr` capture: the
    /// replayable recipe and the daemon-side path to write.
    capture: Option<(CaptureSpec, String)>,
    /// Test fault: panic the worker instead of running (see
    /// [`PANIC_WORKER_FAULT`]).
    panic: bool,
    ctl: Arc<JobCtl>,
    /// Wall-clock budget: the instant past which the run is abandoned,
    /// and the millisecond figure it came from (for the error message).
    deadline: Option<Instant>,
    deadline_ms: Option<u64>,
    reply: SessionTx,
}

/// The bounded per-session writer queue. Critical frames (`ack`,
/// terminals, `stats`, `bye`) always queue — a session can have at most
/// its own outstanding jobs' worth of them in flight — while `progress`
/// heartbeats past `cap` are coalesced or shed, so a reader that stops
/// draining costs the daemon a bounded number of buffered frames, never
/// a blocked worker.
struct FrameQueue {
    inner: Mutex<FrameQueueInner>,
    /// Wakes the writer thread when a frame lands or the last sender
    /// drops.
    ready: Condvar,
    /// Queued-frame count past which heartbeats are shed.
    cap: usize,
    /// Heartbeats coalesced or dropped on this session.
    dropped: AtomicU64,
}

struct FrameQueueInner {
    frames: VecDeque<Response>,
    /// Live [`SessionTx`] clones; the writer exits when this reaches
    /// zero with the queue empty.
    senders: usize,
    /// The transport failed: discard everything from now on so workers
    /// never accumulate frames for (or block on) a dead session.
    dead: bool,
}

/// A handle for queueing response frames to one session's writer
/// thread; clones are counted so the writer knows when every job that
/// could still report has done so.
struct SessionTx {
    q: Arc<FrameQueue>,
}

impl SessionTx {
    fn new(cap: usize) -> SessionTx {
        SessionTx {
            q: Arc::new(FrameQueue {
                inner: Mutex::new(FrameQueueInner {
                    frames: VecDeque::new(),
                    senders: 1,
                    dead: false,
                }),
                ready: Condvar::new(),
                cap: cap.max(1),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Queues a critical frame (never shed; discarded only if the
    /// transport already failed).
    fn send(&self, resp: Response) {
        let mut g = self.q.inner.lock().unwrap();
        if g.dead {
            return;
        }
        g.frames.push_back(resp);
        drop(g);
        self.q.ready.notify_one();
    }

    /// Queues a `progress` heartbeat, shedding under backpressure: when
    /// the queue is at capacity the job's older queued heartbeat is
    /// replaced by this one (coalesced), or — if none is queued — the
    /// new one is dropped. Returns `false` when a heartbeat was shed
    /// either way.
    fn send_progress(&self, job: u64, cycle: u64) -> bool {
        let mut g = self.q.inner.lock().unwrap();
        if g.dead {
            self.q.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if g.frames.len() >= self.q.cap {
            // Coalesce: the newest heartbeat supersedes an older queued
            // one for the same job; one frame's worth of history is
            // shed either way.
            for f in g.frames.iter_mut().rev() {
                if matches!(f, Response::Progress { job: j, .. } if *j == job) {
                    *f = Response::Progress { job, cycle };
                    break;
                }
            }
            self.q.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        g.frames.push_back(Response::Progress { job, cycle });
        drop(g);
        self.q.ready.notify_one();
        true
    }

    /// Heartbeats shed on this session so far.
    fn dropped(&self) -> u64 {
        self.q.dropped.load(Ordering::Relaxed)
    }
}

impl Clone for SessionTx {
    fn clone(&self) -> SessionTx {
        self.q.inner.lock().unwrap().senders += 1;
        SessionTx {
            q: Arc::clone(&self.q),
        }
    }
}

impl Drop for SessionTx {
    fn drop(&mut self) {
        let remaining = {
            let mut g = self.q.inner.lock().unwrap();
            g.senders -= 1;
            g.senders
        };
        if remaining == 0 {
            self.q.ready.notify_all();
        }
    }
}

/// Drains one session's [`FrameQueue`] into its transport. Returns
/// `true` on a clean exit (all senders gone, queue flushed) and `false`
/// when a write or flush failed — the queue is then marked dead so
/// later sends become no-ops, and the caller reaps the session's jobs.
fn writer_loop<W: Write>(q: &FrameQueue, mut writer: W) -> bool {
    loop {
        let frame = {
            let mut g = q.inner.lock().unwrap();
            loop {
                if let Some(f) = g.frames.pop_front() {
                    break f;
                }
                if g.senders == 0 || g.dead {
                    return !g.dead;
                }
                g = q.ready.wait(g).unwrap();
            }
        };
        if writeln!(writer, "{}", frame.encode()).is_err() || writer.flush().is_err() {
            let mut g = q.inner.lock().unwrap();
            g.dead = true;
            g.frames.clear();
            return false;
        }
    }
}

/// Per-worker scheduler accounting (mirrors [`WorkerStat`]).
#[derive(Default, Clone)]
struct WorkerSlot {
    jobs: u64,
    busy: bool,
    busy_ms: u64,
}

/// Per-tenant scheduler accounting (mirrors [`TenantStat`]).
#[derive(Default)]
struct TenantAcct {
    submitted: u64,
    completed: u64,
    /// Most recent queue waits, milliseconds (bounded window).
    waits_ms: VecDeque<u64>,
}

/// One tenant's sub-queue within a band, with its DRR deficit counter.
#[derive(Default)]
struct TenantQueue {
    /// Queued jobs with their enqueue instant (for the wait percentiles).
    jobs: VecDeque<(Job, Instant)>,
    /// Deficit round-robin credit, in job units.
    deficit: u64,
}

/// DRR quantum, in job units. Jobs have no reliable cost estimate
/// before they run, so cost = quantum = 1: each backlogged tenant
/// releases exactly one job per round, and two continuously-backlogged
/// tenants' service never diverges by more than one round's worth of
/// in-flight work (`workers + 1` jobs).
const DRR_QUANTUM: u64 = 1;

/// One strict-priority band: per-tenant sub-queues plus the round-robin
/// ring of tenants that currently have backlog. Invariant: a tenant is
/// in `ring` exactly once iff its queue is non-empty.
#[derive(Default)]
struct Band {
    queues: HashMap<String, TenantQueue>,
    ring: VecDeque<String>,
}

impl Band {
    fn push(&mut self, tenant: &str, job: Job) {
        let q = self.queues.entry(tenant.to_owned()).or_default();
        if q.jobs.is_empty() {
            self.ring.push_back(tenant.to_owned());
        }
        q.jobs.push_back((job, Instant::now()));
    }

    /// Deficit round-robin over the backlogged tenants: the front
    /// tenant earns one quantum, releases one job, and goes to the back
    /// of the ring if it still has backlog (leftover deficit is reset
    /// when the backlog empties, so idle tenants bank no credit).
    fn pop(&mut self) -> Option<(Job, Instant, String)> {
        while let Some(tenant) = self.ring.pop_front() {
            let q = self
                .queues
                .get_mut(&tenant)
                .expect("ring tenants have queues");
            q.deficit += DRR_QUANTUM;
            if let Some((job, enqueued)) = q.jobs.pop_front() {
                q.deficit -= 1;
                if q.jobs.is_empty() {
                    q.deficit = 0;
                } else {
                    self.ring.push_back(tenant.clone());
                }
                return Some((job, enqueued, tenant));
            }
            // A tenant in the ring with no backlog violates the
            // invariant; drop it and keep scanning.
            q.deficit = 0;
        }
        None
    }

    fn len(&self) -> u64 {
        self.queues.values().map(|q| q.jobs.len() as u64).sum()
    }
}

/// Everything the scheduler must keep mutually consistent — queues,
/// worker slots, running/outstanding counts, per-tenant accounting —
/// lives under this one mutex, so a `stats` frame is a single coherent
/// snapshot (no `running > 0` with every slot idle).
struct Sched {
    /// Strict bands, indexed by [`band_index`].
    bands: [Band; 3],
    slots: Vec<WorkerSlot>,
    /// Jobs currently executing.
    running: u64,
    /// Queued + running jobs; `shutdown` waits (on [`Shared::drained`])
    /// until this reaches zero.
    outstanding: u64,
    /// Highest queue depth ever observed (updated at enqueue).
    high_water: u64,
    tenants: HashMap<String, TenantAcct>,
}

impl Sched {
    /// Highest-priority job, fair within the band.
    fn pop(&mut self) -> Option<(Job, Instant, String)> {
        self.bands.iter_mut().find_map(Band::pop)
    }

    fn queue_depth(&self) -> u64 {
        self.bands.iter().map(Band::len).sum()
    }
}

fn band_index(p: Priority) -> usize {
    match p {
        Priority::High => 0,
        Priority::Normal => 1,
        Priority::Low => 2,
    }
}

/// State shared by every session and worker of one daemon.
struct Shared {
    sched: Mutex<Sched>,
    /// Signals workers that a job was queued (or shutdown was set).
    ready: Condvar,
    /// Signals the draining `shutdown` handler that
    /// [`Sched::outstanding`] reached zero. No busy-wait: the handler
    /// sleeps on this condvar and worker release (normal or via the
    /// panic guard) notifies it.
    drained: Condvar,
    /// Set by `shutdown` frames (and by [`Daemon`]'s drop), always
    /// under the [`Sched`] lock so no submit can race past a worker's
    /// exit check. Workers drain the queue, then exit.
    shutdown: AtomicBool,
    /// Cancellation handles of every queued or running job, removed on
    /// the terminal frame; `cancel` frames and disconnect reaping look
    /// their targets up here.
    /// Lock order: may be taken *while holding* the `sched` lock, never
    /// held while *acquiring* it.
    jobs: Mutex<HashMap<u64, Arc<JobCtl>>>,
    next_job: AtomicU64,
    cache: ForkCache,
    slice: u64,
    /// Admission bound on queued jobs (`None` = unbounded).
    max_queue: Option<u64>,
    /// Default per-job wall-clock budget in milliseconds.
    default_deadline_ms: Option<u64>,
    /// Per-session writer-queue bound.
    writer_queue: usize,
    /// Jobs accepted (acked). After a drain, `submitted ==
    /// completed + failed + cancelled + deadline_exceeded +
    /// disconnect_cancelled` — the accounting partition the chaos
    /// harness pins.
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    /// Subset of `rejected` turned away by admission control.
    queue_full: AtomicU64,
    deadline_exceeded: AtomicU64,
    disconnect_cancelled: AtomicU64,
    /// Heartbeats shed across all sessions (each session also keeps its
    /// own count in its [`FrameQueue`]).
    dropped_progress: AtomicU64,
    start: Instant,
}

/// A running simulation service: a worker pool draining a shared job
/// queue through the resident caches. Sessions attach via
/// [`serve`](Daemon::serve) — any `BufRead`/`Write` pair works, so the
/// same daemon backs a Unix socket, a TCP connection, stdio, or an
/// in-process test harness. Dropping the daemon drains queued jobs and
/// joins the workers.
pub struct Daemon {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Starts the worker pool.
    pub fn start(cfg: ServeConfig) -> Daemon {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            sched: Mutex::new(Sched {
                bands: Default::default(),
                slots: vec![WorkerSlot::default(); workers],
                running: 0,
                outstanding: 0,
                high_water: 0,
                tenants: HashMap::new(),
            }),
            ready: Condvar::new(),
            drained: Condvar::new(),
            shutdown: AtomicBool::new(false),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            cache: ForkCache::with_budget(cfg.fork, cfg.cache_bytes),
            slice: cfg.slice.max(1),
            max_queue: cfg.max_queue,
            default_deadline_ms: cfg.deadline_ms,
            writer_queue: cfg.writer_queue,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            queue_full: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            disconnect_cancelled: AtomicU64::new(0),
            dropped_progress: AtomicU64::new(0),
            start: Instant::now(),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pei-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("worker thread spawns")
            })
            .collect();
        Daemon { shared, workers }
    }

    /// Runs one session: reads request frames from `reader` line by
    /// line and streams response frames to `writer` (each frame one
    /// line, flushed). Returns when the reader ends or a `shutdown`
    /// frame completes — after every job this session submitted has
    /// sent its terminal frame, so a caller may drop the transport
    /// immediately. A reader that ends *without* a clean shutdown (or
    /// a writer that fails) counts as a disconnect: the session's
    /// queued and in-flight jobs are cancelled through the ordinary
    /// cancellation path and tallied as `disconnect_cancelled`.
    pub fn serve<R: BufRead, W: Write + Send + 'static>(&self, reader: R, writer: W) {
        serve_session(&self.shared, reader, writer);
    }

    /// Whether a `shutdown` frame has been received (socket accept
    /// loops poll this to stop accepting).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// The daemon's current scheduler/cache statistics (the same frame
    /// a `stats` request returns).
    pub fn stats(&self) -> StatsFrame {
        stats_frame(&self.shared)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        {
            let _s = self.shared.sched.lock().unwrap();
            self.shared.shutdown.store(true, Ordering::Relaxed);
        }
        self.shared.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Restores a worker's claim on the scheduler: slot freed, counters
/// stepped, the draining shutdown handler woken if this was the last
/// outstanding job. Shared by the normal completion path and the panic
/// guard, so the accounting is identical whether `execute` returned or
/// unwound.
fn release_claim(shared: &Shared, slot: usize, tenant: &str, busy_ms: u64) {
    let mut s = shared.sched.lock().unwrap();
    s.slots[slot].busy = false;
    s.slots[slot].jobs += 1;
    s.slots[slot].busy_ms += busy_ms;
    s.running -= 1;
    s.outstanding -= 1;
    s.tenants.entry(tenant.to_owned()).or_default().completed += 1;
    if s.outstanding == 0 {
        shared.drained.notify_all();
    }
}

/// Armed around job execution: if the worker unwinds mid-job, the drop
/// handler makes the job externally indistinguishable from a reported
/// failure — the cancel-map entry is removed, a structured
/// `worker-panic` error frame is the job's terminal frame (so clients
/// never block on a silent job), the job counts as `failed`, and the
/// slot/running/outstanding claim is released (so a draining `shutdown`
/// still reaches zero and answers `bye`). Defused on normal return.
struct PanicGuard<'a> {
    shared: &'a Shared,
    slot: usize,
    id: u64,
    tenant: String,
    reply: SessionTx,
    began: Instant,
    armed: bool,
}

impl PanicGuard<'_> {
    fn defuse(&mut self) {
        self.armed = false;
    }
}

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Scoped: never hold the jobs lock while acquiring sched.
        self.shared.jobs.lock().unwrap().remove(&self.id);
        self.shared.failed.fetch_add(1, Ordering::Relaxed);
        self.reply.send(Response::Error {
            job: Some(self.id),
            kind: "worker-panic".to_owned(),
            message: format!(
                "worker panicked while executing job {}; the job is counted as failed and the daemon keeps serving",
                self.id
            ),
            violations: Vec::new(),
        });
        release_claim(
            self.shared,
            self.slot,
            &self.tenant,
            self.began.elapsed().as_millis() as u64,
        );
    }
}

/// Claims jobs off the shared queue until the queue is empty *and*
/// shutdown was requested (queued work always drains). A panicking job
/// does not kill the worker: the unwind is caught, the [`PanicGuard`]
/// restores the claim, and the loop keeps serving.
fn worker_loop(shared: &Shared, slot: usize) {
    loop {
        let (job, tenant) = {
            let mut s = shared.sched.lock().unwrap();
            loop {
                if let Some((job, enqueued, tenant)) = s.pop() {
                    let wait_ms = enqueued.elapsed().as_millis() as u64;
                    let acct = s.tenants.entry(tenant.clone()).or_default();
                    if acct.waits_ms.len() == WAIT_SAMPLES {
                        acct.waits_ms.pop_front();
                    }
                    acct.waits_ms.push_back(wait_ms);
                    s.running += 1;
                    s.slots[slot].busy = true;
                    break (job, tenant);
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                s = shared.ready.wait(s).unwrap();
            }
        };
        let began = Instant::now();
        let mut guard = PanicGuard {
            shared,
            slot,
            id: job.id,
            tenant: tenant.clone(),
            reply: job.reply.clone(),
            began,
            armed: true,
        };
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(shared, job);
        }))
        .is_err();
        if !unwound {
            guard.defuse();
            release_claim(shared, slot, &tenant, began.elapsed().as_millis() as u64);
        }
        // On unwind the guard already released the claim (its Drop ran
        // during the unwind, inside catch_unwind).
        drop(guard);
    }
}

/// Runs one job to its terminal frame. Never panics the worker on bad
/// outcomes: they become `error` frames, cancellation becomes
/// `cancelled`, a lapsed deadline becomes a `deadline-exceeded` error.
/// (The [`PANIC_WORKER_FAULT`] test fault panics here on purpose, to
/// pin the guard in [`worker_loop`].)
fn execute(shared: &Shared, job: Job) {
    let Job {
        id,
        spec,
        capture,
        panic,
        ctl,
        deadline,
        deadline_ms,
        reply,
    } = job;
    if panic {
        panic!("injected {PANIC_WORKER_FAULT} fault (job {id})");
    }
    let last_cycle = std::cell::Cell::new(0u64);
    let mut trace_path = None;
    let outcome = if let Some((cs, path)) = capture {
        // Traced runs execute cold — the tracer must observe the run
        // from cycle zero, which a restored snapshot cannot provide.
        // Cancellation and the deadline are checked only before the run
        // starts.
        if ctl.cancel.load(Ordering::Relaxed) {
            Err(Stopped::Cancelled)
        } else if deadline.is_some_and(|d| Instant::now() >= d) {
            Err(Stopped::DeadlineExceeded)
        } else {
            shared.cache.note_ineligible();
            match run_captured(&cs, &path) {
                Ok(result) => {
                    trace_path = Some(path);
                    Ok(result)
                }
                Err(message) => {
                    shared.jobs.lock().unwrap().remove(&id);
                    shared.failed.fetch_add(1, Ordering::Relaxed);
                    reply.send(Response::Error {
                        job: Some(id),
                        kind: "trace-io".to_owned(),
                        message,
                        violations: Vec::new(),
                    });
                    return;
                }
            }
        }
    } else {
        shared
            .cache
            .run_bounded(&spec, shared.slice, &ctl.cancel, deadline, |cycle| {
                last_cycle.set(cycle);
                if !reply.send_progress(id, cycle) {
                    shared.dropped_progress.fetch_add(1, Ordering::Relaxed);
                }
            })
    };
    shared.jobs.lock().unwrap().remove(&id);
    match outcome {
        Err(Stopped::Cancelled) => {
            match ctl.cause() {
                Some(StopCause::Disconnect) => {
                    shared.disconnect_cancelled.fetch_add(1, Ordering::Relaxed);
                }
                _ => {
                    shared.cancelled.fetch_add(1, Ordering::Relaxed);
                }
            }
            reply.send(Response::Cancelled {
                job: id,
                cycle: last_cycle.get(),
            });
        }
        Err(Stopped::DeadlineExceeded) => {
            shared.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            let ms = deadline_ms.unwrap_or(0);
            reply.send(Response::Error {
                job: Some(id),
                kind: "deadline-exceeded".to_owned(),
                message: format!(
                    "job {id} exceeded its {ms} ms wall-clock deadline at cycle {}; \
                     the run stopped at a slice boundary and cached state is untouched",
                    last_cycle.get()
                ),
                violations: Vec::new(),
            });
        }
        Ok(result) => match result.outcome.report() {
            Some(report) => {
                shared.failed.fetch_add(1, Ordering::Relaxed);
                reply.send(Response::Error {
                    job: Some(id),
                    kind: report.kind.label().to_owned(),
                    message: report.summary(),
                    violations: report.violations.iter().map(|v| v.to_string()).collect(),
                });
            }
            None => {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                reply.send(Response::Result(result_frame(id, &result, trace_path)));
            }
        },
    }
}

/// The traced path: the same capture flow as `pei_bench::tracecap`,
/// with the encoded `.petr` written to the requested path.
fn run_captured(cs: &CaptureSpec, path: &str) -> Result<RunResult, String> {
    let (result, mut sink) = cs.to_run_spec().run_traced(Box::new(Recorder::new()));
    cs.write_meta(sink.as_mut());
    sink.meta("stats", &result.stats.to_string());
    let bytes = sink
        .to_petr()
        .ok_or_else(|| "the recorder lost its capture".to_owned())?;
    std::fs::write(path, bytes).map_err(|e| format!("can't write trace `{path}`: {e}"))?;
    Ok(result)
}

/// Renders a completed run as its wire frame. The `stats` member is the
/// full report's text rendering — the unit of the byte-identity
/// contract.
fn result_frame(id: u64, r: &RunResult, trace: Option<String>) -> ResultFrame {
    ResultFrame {
        job: id,
        cycles: r.cycles,
        instructions: r.instructions,
        peis: r.peis,
        pim_fraction: r.pim_fraction,
        offchip_bytes: r.offchip_bytes,
        offchip_flits: r.offchip_flits,
        dram_accesses: r.dram_accesses,
        energy_total_nj: r.energy.total(),
        stats: r.stats.to_string(),
        trace,
    }
}

/// Nearest-rank percentile of a sorted sample window (0 when empty).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as u64 * p / 100) as usize]
}

fn stats_frame(shared: &Shared) -> StatsFrame {
    // One lock: queue depth, running, the worker slots, and the tenant
    // table are a single coherent snapshot (a frame can never report
    // `running > 0` with every slot idle).
    let (queue_depth, running, high_water, workers, mut tenants) = {
        let s = shared.sched.lock().unwrap();
        let workers: Vec<WorkerStat> = s
            .slots
            .iter()
            .map(|w| WorkerStat {
                jobs: w.jobs,
                busy: w.busy,
                busy_ms: w.busy_ms,
            })
            .collect();
        let tenants: Vec<TenantStat> = s
            .tenants
            .iter()
            .map(|(name, acct)| {
                let mut waits: Vec<u64> = acct.waits_ms.iter().copied().collect();
                waits.sort_unstable();
                TenantStat {
                    tenant: name.clone(),
                    submitted: acct.submitted,
                    completed: acct.completed,
                    wait_p50_ms: percentile(&waits, 50),
                    wait_p95_ms: percentile(&waits, 95),
                }
            })
            .collect();
        (s.queue_depth(), s.running, s.high_water, workers, tenants)
    };
    tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    let cache = shared.cache.stats();
    StatsFrame {
        queue_depth,
        running,
        submitted: shared.submitted.load(Ordering::Relaxed),
        completed: shared.completed.load(Ordering::Relaxed),
        failed: shared.failed.load(Ordering::Relaxed),
        cancelled: shared.cancelled.load(Ordering::Relaxed),
        rejected: shared.rejected.load(Ordering::Relaxed),
        queue_full: shared.queue_full.load(Ordering::Relaxed),
        deadline_exceeded: shared.deadline_exceeded.load(Ordering::Relaxed),
        disconnect_cancelled: shared.disconnect_cancelled.load(Ordering::Relaxed),
        queue_high_water: high_water,
        dropped_progress: shared.dropped_progress.load(Ordering::Relaxed),
        // Meaningful only inside a session (each fills in its own).
        session_dropped_progress: 0,
        uptime_ms: shared.start.elapsed().as_millis() as u64,
        workers,
        tenants,
        graph_cache_entries: pei_workloads::cache::len() as u64,
        fork_cache: ForkCacheStat {
            entries: cache.entries,
            bytes: cache.bytes,
            hits: cache.fork.hits,
            misses: cache.fork.misses,
            bypasses: cache.fork.bypasses,
            ineligible: cache.fork.ineligible,
            evictions: cache.evictions,
            evicted_bytes: cache.evicted_bytes,
            capacity_bytes: cache.capacity_bytes,
        },
    }
}

/// Cancels (through the ordinary cancellation path) every still-live
/// job in `ids` — the disconnect reap. Jobs already terminal are gone
/// from the map and unaffected; first-cause-wins in [`JobCtl`] keeps a
/// racing client `cancel` counted as a client cancel.
fn reap_session(shared: &Shared, ids: &Mutex<Vec<u64>>) {
    let ids = ids.lock().unwrap();
    let jobs = shared.jobs.lock().unwrap();
    for id in ids.iter() {
        if let Some(ctl) = jobs.get(id) {
            ctl.stop(StopCause::Disconnect);
        }
    }
}

/// The session loop behind [`Daemon::serve`]. Response frames funnel
/// through a bounded [`FrameQueue`] into a per-session writer thread,
/// so worker threads never block on (or interleave within) the
/// transport; a reader EOF/error or a writer failure reaps the
/// session's outstanding jobs.
fn serve_session<R: BufRead, W: Write + Send + 'static>(
    shared: &Arc<Shared>,
    reader: R,
    writer: W,
) {
    let tx = SessionTx::new(shared.writer_queue);
    // Every job id this session submitted, for the disconnect reap
    // (shared with the writer thread, which reaps on transport failure
    // even while the reader is still blocked on a half-open peer).
    let session_jobs = Arc::new(Mutex::new(Vec::<u64>::new()));
    let writer_thread = {
        let q = Arc::clone(&tx.q);
        let shared = Arc::clone(shared);
        let ids = Arc::clone(&session_jobs);
        std::thread::spawn(move || {
            if !writer_loop(&q, writer) {
                reap_session(&shared, &ids);
            }
        })
    };
    let mut clean_shutdown = false;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match Request::decode(&line) {
            Err(e) => {
                // A malformed line poisons only itself: report the
                // offset and keep reading.
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                tx.send(Response::Error {
                    job: None,
                    kind: "bad-frame".to_owned(),
                    message: e.to_string(),
                    violations: Vec::new(),
                });
            }
            Ok(Request::Submit {
                recipe,
                trace,
                tenant,
                priority,
                deadline_ms,
            }) => {
                if let Some(id) = submit(shared, &tx, &recipe, trace, tenant, priority, deadline_ms)
                {
                    session_jobs.lock().unwrap().push(id);
                }
            }
            Ok(Request::Cancel { job }) => {
                let ctl = shared.jobs.lock().unwrap().get(&job).map(Arc::clone);
                match ctl {
                    Some(ctl) => ctl.stop(StopCause::Client),
                    None => {
                        tx.send(Response::Error {
                            job: Some(job),
                            kind: "unknown-job".to_owned(),
                            message: format!("no queued or running job {job}"),
                            violations: Vec::new(),
                        });
                    }
                }
            }
            Ok(Request::Stats) => {
                let mut frame = stats_frame(shared);
                frame.session_dropped_progress = tx.dropped();
                tx.send(Response::Stats(frame));
            }
            Ok(Request::Shutdown) => {
                // Stop accepting (flag set under the sched lock so no
                // submit can race past a worker's exit check), then
                // sleep until the workers report the last outstanding
                // job done — a condvar wait, not a poll loop, and
                // panic-proof because the guard releases claims on
                // unwind too.
                {
                    let _s = shared.sched.lock().unwrap();
                    shared.shutdown.store(true, Ordering::Relaxed);
                }
                shared.ready.notify_all();
                let mut s = shared.sched.lock().unwrap();
                while s.outstanding > 0 {
                    s = shared.drained.wait(s).unwrap();
                }
                drop(s);
                tx.send(Response::Bye);
                clean_shutdown = true;
                break;
            }
        }
    }
    if !clean_shutdown {
        // The client went away (EOF or a read error) without a clean
        // shutdown: cancel its orphaned work so queued and in-flight
        // jobs stop burning worker slots.
        reap_session(shared, &session_jobs);
    }
    // Per-job sender clones keep the writer alive until every job this
    // session submitted has reported; joining here means a returned
    // `serve` call has delivered all its terminal frames.
    drop(tx);
    let _ = writer_thread.join();
}

/// Handles one `submit` frame: admission-check, resolve, ack, enqueue
/// into the tenant's sub-queue of the requested band. Returns the job
/// id when the submission was accepted (acked), `None` when rejected.
fn submit(
    shared: &Arc<Shared>,
    tx: &SessionTx,
    recipe: &Recipe,
    trace: Option<String>,
    tenant: Option<String>,
    priority: Priority,
    deadline_ms: Option<u64>,
) -> Option<u64> {
    let reject = |kind: &str, message: String| {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        tx.send(Response::Error {
            job: None,
            kind: kind.to_owned(),
            message,
            violations: Vec::new(),
        });
        None
    };
    let tenant = tenant.unwrap_or_else(|| DEFAULT_TENANT.to_owned());
    if tenant.is_empty() || tenant.len() > 128 {
        return reject(
            "bad-recipe",
            "`tenant` must be 1..=128 bytes (omit it for the default tenant)".to_owned(),
        );
    }
    // The panic-worker test fault is daemon-level: strip it before the
    // simulator vocabulary sees it.
    let mut recipe = recipe.clone();
    let panic = recipe.fault_kinds.iter().any(|k| k == PANIC_WORKER_FAULT);
    if panic {
        recipe.fault_kinds.retain(|k| k != PANIC_WORKER_FAULT);
        if recipe.fault_kinds.is_empty() {
            recipe.fault_seed = None;
        }
    }
    let spec = match resolve_recipe(&recipe) {
        Ok(spec) => spec,
        Err(e) => return reject("bad-recipe", e),
    };
    let capture = match trace {
        None => None,
        Some(path) => match resolve_capture(&recipe) {
            Ok(cs) => Some((cs, path)),
            Err(e) => return reject("bad-recipe", e),
        },
    };
    // Ack and enqueue under the sched lock: a worker can't pop the job
    // (so no result frame can overtake the ack), the shutdown flag
    // can't flip between the check and the push (so no job is ever
    // stranded in the queue after the workers exit), and the admission
    // check can't race another submit past the bound.
    let mut s = shared.sched.lock().unwrap();
    if shared.shutdown.load(Ordering::Relaxed) {
        drop(s);
        return reject("shutting-down", "the daemon is draining".to_owned());
    }
    if let Some(max) = shared.max_queue {
        if s.queue_depth() >= max {
            drop(s);
            shared.queue_full.fetch_add(1, Ordering::Relaxed);
            return reject(
                "queue-full",
                format!("the queue is at its bound ({max} jobs); resubmit once backlog drains"),
            );
        }
    }
    let id = shared.next_job.fetch_add(1, Ordering::Relaxed) + 1;
    let ctl = Arc::new(JobCtl::new());
    shared.jobs.lock().unwrap().insert(id, Arc::clone(&ctl));
    s.outstanding += 1;
    s.tenants.entry(tenant.clone()).or_default().submitted += 1;
    shared.submitted.fetch_add(1, Ordering::Relaxed);
    // The wall-clock budget runs from the ack.
    let deadline_ms = deadline_ms.or(shared.default_deadline_ms);
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    tx.send(Response::Ack { job: id });
    s.bands[band_index(priority)].push(
        &tenant,
        Job {
            id,
            spec,
            capture,
            panic,
            ctl,
            deadline,
            deadline_ms,
            reply: tx.clone(),
        },
    );
    let depth = s.queue_depth();
    if depth > s.high_water {
        s.high_water = depth;
    }
    drop(s);
    shared.ready.notify_one();
    Some(id)
}
