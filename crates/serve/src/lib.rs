//! `pei-serve`: the simulator as a long-running service (DESIGN.md §12).
//!
//! One-shot binaries pay the full startup bill per cell: process spawn,
//! input-graph construction, and — when several cells share a warm
//! prefix — the same warmup replayed once per cell. A daemon pays those
//! costs once per *process*: the [`Daemon`] keeps the process-wide
//! `Arc<Graph>` input cache and a resident
//! [`ForkCache`] of warm snapshots alive
//! across submissions, so the tenth job of a sweep starts where the
//! first one left the machine.
//!
//! The wire protocol is newline-delimited JSON over a Unix socket (or
//! stdio); the frame types live in [`pei_types::wire`] and the grammar
//! in DESIGN.md §12. A session submits recipes and receives, per job:
//! one `ack` carrying the job id, `progress` heartbeats while the run
//! advances, and exactly one terminal frame — `result`, `cancelled`, or
//! a structured `error`. Malformed frames and failed runs (checked-mode
//! violations, stalls, cycle limits) come back as `error` frames; the
//! daemon never dies on a bad submission.
//!
//! The byte-identity contract holds end to end: the `stats` text inside
//! a `result` frame equals the one-shot binary's rendering of the same
//! recipe, whichever cache path served the job (pinned by this crate's
//! tests and the CI serve-smoke job).

use pei_bench::runner::{ForkPolicy, RunSpec};
use pei_bench::service::{resolve_capture, resolve_recipe, ForkCache};
use pei_bench::tracecap::CaptureSpec;
use pei_system::RunResult;
use pei_trace::Recorder;
use pei_types::wire::{
    ForkCacheStat, Recipe, Request, Response, ResultFrame, StatsFrame, WorkerStat,
};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a [`Daemon`] is provisioned.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing jobs (the submission queue is unbounded;
    /// this bounds concurrency, not backlog).
    pub workers: usize,
    /// Cancellation/heartbeat granularity: jobs pause every this many
    /// simulated cycles to check their cancel flag and emit a
    /// `progress` frame. Slicing never changes results — only where the
    /// run loop pauses.
    pub slice: u64,
    /// Warm-fork policy for the resident snapshot cache.
    pub fork: ForkPolicy,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 1,
            slice: 1_000_000,
            fork: ForkPolicy::default(),
        }
    }
}

/// A queued unit of work: the resolved spec plus everything needed to
/// report back to the submitting session.
struct Job {
    id: u64,
    spec: RunSpec,
    /// `Some` when the submission asked for a `.petr` capture: the
    /// replayable recipe and the daemon-side path to write.
    capture: Option<(CaptureSpec, String)>,
    cancel: Arc<AtomicBool>,
    reply: Sender<Response>,
}

/// Per-worker scheduler accounting (mirrors [`WorkerStat`]).
#[derive(Default, Clone)]
struct WorkerSlot {
    jobs: u64,
    busy: bool,
    busy_ms: u64,
}

/// State shared by every session and worker of one daemon.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    /// Set by `shutdown` frames (and by [`Daemon`]'s drop). Workers
    /// drain the queue, then exit.
    shutdown: AtomicBool,
    /// Cancel flags of every queued or running job, removed on the
    /// terminal frame; `cancel` frames look their target up here.
    jobs: Mutex<HashMap<u64, Arc<AtomicBool>>>,
    next_job: AtomicU64,
    cache: ForkCache,
    slice: u64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    running: AtomicU64,
    /// Queued + running jobs; `shutdown` drains until this hits zero.
    outstanding: AtomicU64,
    slots: Mutex<Vec<WorkerSlot>>,
    start: Instant,
}

/// A running simulation service: a worker pool draining a shared job
/// queue through the resident caches. Sessions attach via
/// [`serve`](Daemon::serve) — any `BufRead`/`Write` pair works, so the
/// same daemon backs a Unix socket, stdio, or an in-process test
/// harness. Dropping the daemon drains queued jobs and joins the
/// workers.
pub struct Daemon {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Starts the worker pool.
    pub fn start(cfg: ServeConfig) -> Daemon {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            cache: ForkCache::new(cfg.fork),
            slice: cfg.slice.max(1),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            running: AtomicU64::new(0),
            outstanding: AtomicU64::new(0),
            slots: Mutex::new(vec![WorkerSlot::default(); workers]),
            start: Instant::now(),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pei-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("worker thread spawns")
            })
            .collect();
        Daemon { shared, workers }
    }

    /// Runs one session: reads request frames from `reader` line by
    /// line and streams response frames to `writer` (each frame one
    /// line, flushed). Returns when the reader ends or a `shutdown`
    /// frame completes — after every job this session submitted has
    /// sent its terminal frame, so a caller may drop the transport
    /// immediately.
    pub fn serve<R: BufRead, W: Write + Send + 'static>(&self, reader: R, writer: W) {
        serve_session(&self.shared, reader, writer);
    }

    /// Whether a `shutdown` frame has been received (socket accept
    /// loops poll this to stop accepting).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// The daemon's current scheduler/cache statistics (the same frame
    /// a `stats` request returns).
    pub fn stats(&self) -> StatsFrame {
        stats_frame(&self.shared)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claims jobs off the shared queue until the queue is empty *and*
/// shutdown was requested (queued work always drains).
fn worker_loop(shared: &Shared, slot: usize) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                q = shared.ready.wait(q).unwrap();
            }
        };
        shared.running.fetch_add(1, Ordering::Relaxed);
        shared.slots.lock().unwrap()[slot].busy = true;
        let began = Instant::now();
        execute(shared, job);
        let busy_ms = began.elapsed().as_millis() as u64;
        {
            let mut slots = shared.slots.lock().unwrap();
            slots[slot].busy = false;
            slots[slot].jobs += 1;
            slots[slot].busy_ms += busy_ms;
        }
        shared.running.fetch_sub(1, Ordering::Relaxed);
        shared.outstanding.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs one job to its terminal frame. Never panics the worker: bad
/// outcomes become `error` frames, cancellation becomes `cancelled`.
fn execute(shared: &Shared, job: Job) {
    let Job {
        id,
        spec,
        capture,
        cancel,
        reply,
    } = job;
    let last_cycle = std::cell::Cell::new(0u64);
    let mut trace_path = None;
    let result = if cancel.load(Ordering::Relaxed) {
        // Cancelled while still queued: report without building anything.
        None
    } else if let Some((cs, path)) = capture {
        // Traced runs execute cold — the tracer must observe the run
        // from cycle zero, which a restored snapshot cannot provide.
        // Cancellation is checked only before the run starts.
        shared.cache.note_ineligible();
        match run_captured(&cs, &path) {
            Ok(result) => {
                trace_path = Some(path);
                Some(result)
            }
            Err(message) => {
                shared.jobs.lock().unwrap().remove(&id);
                shared.failed.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Response::Error {
                    job: Some(id),
                    kind: "trace-io".to_owned(),
                    message,
                    violations: Vec::new(),
                });
                return;
            }
        }
    } else {
        shared
            .cache
            .run_cancellable(&spec, shared.slice, &cancel, |cycle| {
                last_cycle.set(cycle);
                let _ = reply.send(Response::Progress { job: id, cycle });
            })
    };
    shared.jobs.lock().unwrap().remove(&id);
    match result {
        None => {
            shared.cancelled.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Response::Cancelled {
                job: id,
                cycle: last_cycle.get(),
            });
        }
        Some(result) => match result.outcome.report() {
            Some(report) => {
                shared.failed.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Response::Error {
                    job: Some(id),
                    kind: report.kind.label().to_owned(),
                    message: report.summary(),
                    violations: report.violations.iter().map(|v| v.to_string()).collect(),
                });
            }
            None => {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Response::Result(result_frame(id, &result, trace_path)));
            }
        },
    }
}

/// The traced path: the same capture flow as `pei_bench::tracecap`,
/// with the encoded `.petr` written to the requested path.
fn run_captured(cs: &CaptureSpec, path: &str) -> Result<RunResult, String> {
    let (result, mut sink) = cs.to_run_spec().run_traced(Box::new(Recorder::new()));
    cs.write_meta(sink.as_mut());
    sink.meta("stats", &result.stats.to_string());
    let bytes = sink
        .to_petr()
        .ok_or_else(|| "the recorder lost its capture".to_owned())?;
    std::fs::write(path, bytes).map_err(|e| format!("can't write trace `{path}`: {e}"))?;
    Ok(result)
}

/// Renders a completed run as its wire frame. The `stats` member is the
/// full report's text rendering — the unit of the byte-identity
/// contract.
fn result_frame(id: u64, r: &RunResult, trace: Option<String>) -> ResultFrame {
    ResultFrame {
        job: id,
        cycles: r.cycles,
        instructions: r.instructions,
        peis: r.peis,
        pim_fraction: r.pim_fraction,
        offchip_bytes: r.offchip_bytes,
        offchip_flits: r.offchip_flits,
        dram_accesses: r.dram_accesses,
        energy_total_nj: r.energy.total(),
        stats: r.stats.to_string(),
        trace,
    }
}

fn stats_frame(shared: &Shared) -> StatsFrame {
    let queue_depth = shared.queue.lock().unwrap().len() as u64;
    let workers = shared
        .slots
        .lock()
        .unwrap()
        .iter()
        .map(|s| WorkerStat {
            jobs: s.jobs,
            busy: s.busy,
            busy_ms: s.busy_ms,
        })
        .collect();
    let cache = shared.cache.stats();
    StatsFrame {
        queue_depth,
        running: shared.running.load(Ordering::Relaxed),
        completed: shared.completed.load(Ordering::Relaxed),
        failed: shared.failed.load(Ordering::Relaxed),
        cancelled: shared.cancelled.load(Ordering::Relaxed),
        rejected: shared.rejected.load(Ordering::Relaxed),
        uptime_ms: shared.start.elapsed().as_millis() as u64,
        workers,
        graph_cache_entries: pei_workloads::cache::len() as u64,
        fork_cache: ForkCacheStat {
            entries: cache.entries,
            bytes: cache.bytes,
            hits: cache.fork.hits,
            misses: cache.fork.misses,
            bypasses: cache.fork.bypasses,
            ineligible: cache.fork.ineligible,
        },
    }
}

/// The session loop behind [`Daemon::serve`]. Response frames funnel
/// through an mpsc channel into a per-session writer thread, so worker
/// threads never block on (or interleave within) the transport.
fn serve_session<R: BufRead, W: Write + Send + 'static>(
    shared: &Arc<Shared>,
    reader: R,
    writer: W,
) {
    let (tx, rx) = mpsc::channel::<Response>();
    let writer_thread = std::thread::spawn(move || {
        let mut writer = writer;
        for resp in rx {
            if writeln!(writer, "{}", resp.encode()).is_err() {
                break;
            }
            let _ = writer.flush();
        }
    });
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match Request::decode(&line) {
            Err(e) => {
                // A malformed line poisons only itself: report the
                // offset and keep reading.
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(Response::Error {
                    job: None,
                    kind: "bad-frame".to_owned(),
                    message: e.to_string(),
                    violations: Vec::new(),
                });
            }
            Ok(Request::Submit { recipe, trace }) => submit(shared, &tx, &recipe, trace),
            Ok(Request::Cancel { job }) => {
                let flag = shared.jobs.lock().unwrap().get(&job).map(Arc::clone);
                match flag {
                    Some(flag) => flag.store(true, Ordering::Relaxed),
                    None => {
                        let _ = tx.send(Response::Error {
                            job: Some(job),
                            kind: "unknown-job".to_owned(),
                            message: format!("no queued or running job {job}"),
                            violations: Vec::new(),
                        });
                    }
                }
            }
            Ok(Request::Stats) => {
                let _ = tx.send(Response::Stats(stats_frame(shared)));
            }
            Ok(Request::Shutdown) => {
                // Stop accepting (flag set under the queue lock so no
                // submit can race past a worker's exit check), drain
                // what's queued and running, then say goodbye.
                {
                    let _q = shared.queue.lock().unwrap();
                    shared.shutdown.store(true, Ordering::Relaxed);
                }
                shared.ready.notify_all();
                while shared.outstanding.load(Ordering::Relaxed) > 0 {
                    std::thread::sleep(Duration::from_millis(2));
                }
                let _ = tx.send(Response::Bye);
                break;
            }
        }
    }
    // Per-job sender clones keep the writer alive until every job this
    // session submitted has reported; joining here means a returned
    // `serve` call has delivered all its terminal frames.
    drop(tx);
    let _ = writer_thread.join();
}

/// Handles one `submit` frame: resolve, ack, enqueue.
fn submit(shared: &Arc<Shared>, tx: &Sender<Response>, recipe: &Recipe, trace: Option<String>) {
    let reject = |kind: &str, message: String| {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        let _ = tx.send(Response::Error {
            job: None,
            kind: kind.to_owned(),
            message,
            violations: Vec::new(),
        });
    };
    let spec = match resolve_recipe(recipe) {
        Ok(spec) => spec,
        Err(e) => return reject("bad-recipe", e),
    };
    let capture = match trace {
        None => None,
        Some(path) => match resolve_capture(recipe) {
            Ok(cs) => Some((cs, path)),
            Err(e) => return reject("bad-recipe", e),
        },
    };
    // Ack and enqueue under the queue lock: a worker can't pop the job
    // (so no result frame can overtake the ack), and the shutdown flag
    // can't flip between the check and the push (so no job is ever
    // stranded in the queue after the workers exit).
    let mut q = shared.queue.lock().unwrap();
    if shared.shutdown.load(Ordering::Relaxed) {
        drop(q);
        return reject("shutting-down", "the daemon is draining".to_owned());
    }
    let id = shared.next_job.fetch_add(1, Ordering::Relaxed) + 1;
    let cancel = Arc::new(AtomicBool::new(false));
    shared.jobs.lock().unwrap().insert(id, Arc::clone(&cancel));
    shared.outstanding.fetch_add(1, Ordering::Relaxed);
    let _ = tx.send(Response::Ack { job: id });
    q.push_back(Job {
        id,
        spec,
        capture,
        cancel,
        reply: tx.clone(),
    });
    drop(q);
    shared.ready.notify_one();
}
