//! `pei-serve`: the simulator as a long-running service (DESIGN.md §12).
//!
//! One-shot binaries pay the full startup bill per cell: process spawn,
//! input-graph construction, and — when several cells share a warm
//! prefix — the same warmup replayed once per cell. A daemon pays those
//! costs once per *process*: the [`Daemon`] keeps the process-wide
//! `Arc<Graph>` input cache and a resident
//! [`ForkCache`] of warm snapshots alive
//! across submissions, so the tenth job of a sweep starts where the
//! first one left the machine. Residency is bounded: the snapshot cache
//! evicts least-recently-used entries past its byte budget
//! ([`ServeConfig::cache_bytes`]), trading warmup time for memory
//! without ever changing a result byte.
//!
//! The wire protocol is newline-delimited JSON over a Unix socket, TCP,
//! or stdio; the frame types live in [`pei_types::wire`] and the
//! grammar in DESIGN.md §12. A session submits recipes — optionally
//! tagged with a `tenant` and a `priority` band — and receives, per
//! job: one `ack` carrying the job id, `progress` heartbeats while the
//! run advances, and exactly one terminal frame — `result`,
//! `cancelled`, or a structured `error`. Malformed frames and failed
//! runs (checked-mode violations, stalls, cycle limits, even a worker
//! panic) come back as `error` frames; the daemon never dies on a bad
//! submission.
//!
//! Scheduling is strict across priority bands and fair within one:
//! each band keeps a sub-queue per tenant, drained by deficit
//! round-robin with unit job cost, so a tenant flooding the queue
//! cannot starve the others — under saturation any two
//! continuously-backlogged tenants' completion counts stay within
//! `workers + 1` jobs of each other (the DRR bound with quantum 1).
//!
//! The byte-identity contract holds end to end: the `stats` text inside
//! a `result` frame equals the one-shot binary's rendering of the same
//! recipe, whichever cache or scheduling path served the job (pinned by
//! this crate's tests and the CI serve-smoke job).

use pei_bench::runner::{ForkPolicy, RunSpec};
use pei_bench::service::{resolve_capture, resolve_recipe, ForkCache};
use pei_bench::tracecap::CaptureSpec;
use pei_system::RunResult;
use pei_trace::Recorder;
use pei_types::wire::{
    ForkCacheStat, Priority, Recipe, Request, Response, ResultFrame, StatsFrame, TenantStat,
    WorkerStat,
};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Default byte budget for the resident warm-snapshot cache.
pub const DEFAULT_CACHE_BYTES: u64 = 256 << 20;

/// Tenant name used when a submission names none.
pub const DEFAULT_TENANT: &str = "default";

/// Queue-wait samples retained per tenant for the p50/p95 figures in
/// the `stats` frame (a sliding window of the most recent waits).
const WAIT_SAMPLES: usize = 512;

/// The pseudo fault kind that makes the executing worker panic mid-job.
/// Like the simulator fault kinds it is for tests only (the drain-path
/// pinning in this crate's suite and CI); it is intercepted by the
/// daemon before recipe resolution and never reaches the simulator.
pub const PANIC_WORKER_FAULT: &str = "panic-worker";

/// How a [`Daemon`] is provisioned.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing jobs (the submission queue is unbounded;
    /// this bounds concurrency, not backlog).
    pub workers: usize,
    /// Cancellation/heartbeat granularity: jobs pause every this many
    /// simulated cycles to check their cancel flag and emit a
    /// `progress` frame. Slicing never changes results — only where the
    /// run loop pauses.
    pub slice: u64,
    /// Warm-fork policy for the resident snapshot cache.
    pub fork: ForkPolicy,
    /// Byte budget for resident warm snapshots; LRU entries are evicted
    /// past it. `None` = unbounded (the pre-budget behavior).
    pub cache_bytes: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 1,
            slice: 1_000_000,
            fork: ForkPolicy::default(),
            cache_bytes: Some(DEFAULT_CACHE_BYTES),
        }
    }
}

/// A queued unit of work: the resolved spec plus everything needed to
/// report back to the submitting session.
struct Job {
    id: u64,
    spec: RunSpec,
    /// `Some` when the submission asked for a `.petr` capture: the
    /// replayable recipe and the daemon-side path to write.
    capture: Option<(CaptureSpec, String)>,
    /// Test fault: panic the worker instead of running (see
    /// [`PANIC_WORKER_FAULT`]).
    panic: bool,
    cancel: Arc<AtomicBool>,
    reply: Sender<Response>,
}

/// Per-worker scheduler accounting (mirrors [`WorkerStat`]).
#[derive(Default, Clone)]
struct WorkerSlot {
    jobs: u64,
    busy: bool,
    busy_ms: u64,
}

/// Per-tenant scheduler accounting (mirrors [`TenantStat`]).
#[derive(Default)]
struct TenantAcct {
    submitted: u64,
    completed: u64,
    /// Most recent queue waits, milliseconds (bounded window).
    waits_ms: VecDeque<u64>,
}

/// One tenant's sub-queue within a band, with its DRR deficit counter.
#[derive(Default)]
struct TenantQueue {
    /// Queued jobs with their enqueue instant (for the wait percentiles).
    jobs: VecDeque<(Job, Instant)>,
    /// Deficit round-robin credit, in job units.
    deficit: u64,
}

/// DRR quantum, in job units. Jobs have no reliable cost estimate
/// before they run, so cost = quantum = 1: each backlogged tenant
/// releases exactly one job per round, and two continuously-backlogged
/// tenants' service never diverges by more than one round's worth of
/// in-flight work (`workers + 1` jobs).
const DRR_QUANTUM: u64 = 1;

/// One strict-priority band: per-tenant sub-queues plus the round-robin
/// ring of tenants that currently have backlog. Invariant: a tenant is
/// in `ring` exactly once iff its queue is non-empty.
#[derive(Default)]
struct Band {
    queues: HashMap<String, TenantQueue>,
    ring: VecDeque<String>,
}

impl Band {
    fn push(&mut self, tenant: &str, job: Job) {
        let q = self.queues.entry(tenant.to_owned()).or_default();
        if q.jobs.is_empty() {
            self.ring.push_back(tenant.to_owned());
        }
        q.jobs.push_back((job, Instant::now()));
    }

    /// Deficit round-robin over the backlogged tenants: the front
    /// tenant earns one quantum, releases one job, and goes to the back
    /// of the ring if it still has backlog (leftover deficit is reset
    /// when the backlog empties, so idle tenants bank no credit).
    fn pop(&mut self) -> Option<(Job, Instant, String)> {
        while let Some(tenant) = self.ring.pop_front() {
            let q = self
                .queues
                .get_mut(&tenant)
                .expect("ring tenants have queues");
            q.deficit += DRR_QUANTUM;
            if let Some((job, enqueued)) = q.jobs.pop_front() {
                q.deficit -= 1;
                if q.jobs.is_empty() {
                    q.deficit = 0;
                } else {
                    self.ring.push_back(tenant.clone());
                }
                return Some((job, enqueued, tenant));
            }
            // A tenant in the ring with no backlog violates the
            // invariant; drop it and keep scanning.
            q.deficit = 0;
        }
        None
    }

    fn len(&self) -> u64 {
        self.queues.values().map(|q| q.jobs.len() as u64).sum()
    }
}

/// Everything the scheduler must keep mutually consistent — queues,
/// worker slots, running/outstanding counts, per-tenant accounting —
/// lives under this one mutex, so a `stats` frame is a single coherent
/// snapshot (no `running > 0` with every slot idle).
struct Sched {
    /// Strict bands, indexed by [`band_index`].
    bands: [Band; 3],
    slots: Vec<WorkerSlot>,
    /// Jobs currently executing.
    running: u64,
    /// Queued + running jobs; `shutdown` waits (on [`Shared::drained`])
    /// until this reaches zero.
    outstanding: u64,
    tenants: HashMap<String, TenantAcct>,
}

impl Sched {
    /// Highest-priority job, fair within the band.
    fn pop(&mut self) -> Option<(Job, Instant, String)> {
        self.bands.iter_mut().find_map(Band::pop)
    }

    fn queue_depth(&self) -> u64 {
        self.bands.iter().map(Band::len).sum()
    }
}

fn band_index(p: Priority) -> usize {
    match p {
        Priority::High => 0,
        Priority::Normal => 1,
        Priority::Low => 2,
    }
}

/// State shared by every session and worker of one daemon.
struct Shared {
    sched: Mutex<Sched>,
    /// Signals workers that a job was queued (or shutdown was set).
    ready: Condvar,
    /// Signals the draining `shutdown` handler that
    /// [`Sched::outstanding`] reached zero. No busy-wait: the handler
    /// sleeps on this condvar and worker release (normal or via the
    /// panic guard) notifies it.
    drained: Condvar,
    /// Set by `shutdown` frames (and by [`Daemon`]'s drop), always
    /// under the [`Sched`] lock so no submit can race past a worker's
    /// exit check. Workers drain the queue, then exit.
    shutdown: AtomicBool,
    /// Cancel flags of every queued or running job, removed on the
    /// terminal frame; `cancel` frames look their target up here.
    /// Lock order: may be taken *while holding* the `sched` lock, never
    /// held while *acquiring* it.
    jobs: Mutex<HashMap<u64, Arc<AtomicBool>>>,
    next_job: AtomicU64,
    cache: ForkCache,
    slice: u64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    start: Instant,
}

/// A running simulation service: a worker pool draining a shared job
/// queue through the resident caches. Sessions attach via
/// [`serve`](Daemon::serve) — any `BufRead`/`Write` pair works, so the
/// same daemon backs a Unix socket, a TCP connection, stdio, or an
/// in-process test harness. Dropping the daemon drains queued jobs and
/// joins the workers.
pub struct Daemon {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Starts the worker pool.
    pub fn start(cfg: ServeConfig) -> Daemon {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            sched: Mutex::new(Sched {
                bands: Default::default(),
                slots: vec![WorkerSlot::default(); workers],
                running: 0,
                outstanding: 0,
                tenants: HashMap::new(),
            }),
            ready: Condvar::new(),
            drained: Condvar::new(),
            shutdown: AtomicBool::new(false),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            cache: ForkCache::with_budget(cfg.fork, cfg.cache_bytes),
            slice: cfg.slice.max(1),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            start: Instant::now(),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pei-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("worker thread spawns")
            })
            .collect();
        Daemon { shared, workers }
    }

    /// Runs one session: reads request frames from `reader` line by
    /// line and streams response frames to `writer` (each frame one
    /// line, flushed). Returns when the reader ends or a `shutdown`
    /// frame completes — after every job this session submitted has
    /// sent its terminal frame, so a caller may drop the transport
    /// immediately.
    pub fn serve<R: BufRead, W: Write + Send + 'static>(&self, reader: R, writer: W) {
        serve_session(&self.shared, reader, writer);
    }

    /// Whether a `shutdown` frame has been received (socket accept
    /// loops poll this to stop accepting).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// The daemon's current scheduler/cache statistics (the same frame
    /// a `stats` request returns).
    pub fn stats(&self) -> StatsFrame {
        stats_frame(&self.shared)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        {
            let _s = self.shared.sched.lock().unwrap();
            self.shared.shutdown.store(true, Ordering::Relaxed);
        }
        self.shared.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Restores a worker's claim on the scheduler: slot freed, counters
/// stepped, the draining shutdown handler woken if this was the last
/// outstanding job. Shared by the normal completion path and the panic
/// guard, so the accounting is identical whether `execute` returned or
/// unwound.
fn release_claim(shared: &Shared, slot: usize, tenant: &str, busy_ms: u64) {
    let mut s = shared.sched.lock().unwrap();
    s.slots[slot].busy = false;
    s.slots[slot].jobs += 1;
    s.slots[slot].busy_ms += busy_ms;
    s.running -= 1;
    s.outstanding -= 1;
    s.tenants
        .entry(tenant.to_owned())
        .or_default()
        .completed += 1;
    if s.outstanding == 0 {
        shared.drained.notify_all();
    }
}

/// Armed around job execution: if the worker unwinds mid-job, the drop
/// handler makes the job externally indistinguishable from a reported
/// failure — the cancel-map entry is removed, a structured
/// `worker-panic` error frame is the job's terminal frame (so clients
/// never block on a silent job), the job counts as `failed`, and the
/// slot/running/outstanding claim is released (so a draining `shutdown`
/// still reaches zero and answers `bye`). Defused on normal return.
struct PanicGuard<'a> {
    shared: &'a Shared,
    slot: usize,
    id: u64,
    tenant: String,
    reply: Sender<Response>,
    began: Instant,
    armed: bool,
}

impl PanicGuard<'_> {
    fn defuse(&mut self) {
        self.armed = false;
    }
}

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Scoped: never hold the jobs lock while acquiring sched.
        self.shared.jobs.lock().unwrap().remove(&self.id);
        self.shared.failed.fetch_add(1, Ordering::Relaxed);
        let _ = self.reply.send(Response::Error {
            job: Some(self.id),
            kind: "worker-panic".to_owned(),
            message: format!(
                "worker panicked while executing job {}; the job is counted as failed and the daemon keeps serving",
                self.id
            ),
            violations: Vec::new(),
        });
        release_claim(
            self.shared,
            self.slot,
            &self.tenant,
            self.began.elapsed().as_millis() as u64,
        );
    }
}

/// Claims jobs off the shared queue until the queue is empty *and*
/// shutdown was requested (queued work always drains). A panicking job
/// does not kill the worker: the unwind is caught, the [`PanicGuard`]
/// restores the claim, and the loop keeps serving.
fn worker_loop(shared: &Shared, slot: usize) {
    loop {
        let (job, tenant) = {
            let mut s = shared.sched.lock().unwrap();
            loop {
                if let Some((job, enqueued, tenant)) = s.pop() {
                    let wait_ms = enqueued.elapsed().as_millis() as u64;
                    let acct = s.tenants.entry(tenant.clone()).or_default();
                    if acct.waits_ms.len() == WAIT_SAMPLES {
                        acct.waits_ms.pop_front();
                    }
                    acct.waits_ms.push_back(wait_ms);
                    s.running += 1;
                    s.slots[slot].busy = true;
                    break (job, tenant);
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                s = shared.ready.wait(s).unwrap();
            }
        };
        let began = Instant::now();
        let mut guard = PanicGuard {
            shared,
            slot,
            id: job.id,
            tenant: tenant.clone(),
            reply: job.reply.clone(),
            began,
            armed: true,
        };
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(shared, job);
        }))
        .is_err();
        if !unwound {
            guard.defuse();
            release_claim(shared, slot, &tenant, began.elapsed().as_millis() as u64);
        }
        // On unwind the guard already released the claim (its Drop ran
        // during the unwind, inside catch_unwind).
        drop(guard);
    }
}

/// Runs one job to its terminal frame. Never panics the worker on bad
/// outcomes: they become `error` frames, cancellation becomes
/// `cancelled`. (The [`PANIC_WORKER_FAULT`] test fault panics here on
/// purpose, to pin the guard in [`worker_loop`].)
fn execute(shared: &Shared, job: Job) {
    let Job {
        id,
        spec,
        capture,
        panic,
        cancel,
        reply,
    } = job;
    if panic {
        panic!("injected {PANIC_WORKER_FAULT} fault (job {id})");
    }
    let last_cycle = std::cell::Cell::new(0u64);
    let mut trace_path = None;
    let result = if cancel.load(Ordering::Relaxed) {
        // Cancelled while still queued: report without building anything.
        None
    } else if let Some((cs, path)) = capture {
        // Traced runs execute cold — the tracer must observe the run
        // from cycle zero, which a restored snapshot cannot provide.
        // Cancellation is checked only before the run starts.
        shared.cache.note_ineligible();
        match run_captured(&cs, &path) {
            Ok(result) => {
                trace_path = Some(path);
                Some(result)
            }
            Err(message) => {
                shared.jobs.lock().unwrap().remove(&id);
                shared.failed.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Response::Error {
                    job: Some(id),
                    kind: "trace-io".to_owned(),
                    message,
                    violations: Vec::new(),
                });
                return;
            }
        }
    } else {
        shared
            .cache
            .run_cancellable(&spec, shared.slice, &cancel, |cycle| {
                last_cycle.set(cycle);
                let _ = reply.send(Response::Progress { job: id, cycle });
            })
    };
    shared.jobs.lock().unwrap().remove(&id);
    match result {
        None => {
            shared.cancelled.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Response::Cancelled {
                job: id,
                cycle: last_cycle.get(),
            });
        }
        Some(result) => match result.outcome.report() {
            Some(report) => {
                shared.failed.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Response::Error {
                    job: Some(id),
                    kind: report.kind.label().to_owned(),
                    message: report.summary(),
                    violations: report.violations.iter().map(|v| v.to_string()).collect(),
                });
            }
            None => {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Response::Result(result_frame(id, &result, trace_path)));
            }
        },
    }
}

/// The traced path: the same capture flow as `pei_bench::tracecap`,
/// with the encoded `.petr` written to the requested path.
fn run_captured(cs: &CaptureSpec, path: &str) -> Result<RunResult, String> {
    let (result, mut sink) = cs.to_run_spec().run_traced(Box::new(Recorder::new()));
    cs.write_meta(sink.as_mut());
    sink.meta("stats", &result.stats.to_string());
    let bytes = sink
        .to_petr()
        .ok_or_else(|| "the recorder lost its capture".to_owned())?;
    std::fs::write(path, bytes).map_err(|e| format!("can't write trace `{path}`: {e}"))?;
    Ok(result)
}

/// Renders a completed run as its wire frame. The `stats` member is the
/// full report's text rendering — the unit of the byte-identity
/// contract.
fn result_frame(id: u64, r: &RunResult, trace: Option<String>) -> ResultFrame {
    ResultFrame {
        job: id,
        cycles: r.cycles,
        instructions: r.instructions,
        peis: r.peis,
        pim_fraction: r.pim_fraction,
        offchip_bytes: r.offchip_bytes,
        offchip_flits: r.offchip_flits,
        dram_accesses: r.dram_accesses,
        energy_total_nj: r.energy.total(),
        stats: r.stats.to_string(),
        trace,
    }
}

/// Nearest-rank percentile of a sorted sample window (0 when empty).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as u64 * p / 100) as usize]
}

fn stats_frame(shared: &Shared) -> StatsFrame {
    // One lock: queue depth, running, the worker slots, and the tenant
    // table are a single coherent snapshot (a frame can never report
    // `running > 0` with every slot idle).
    let (queue_depth, running, workers, mut tenants) = {
        let s = shared.sched.lock().unwrap();
        let workers: Vec<WorkerStat> = s
            .slots
            .iter()
            .map(|w| WorkerStat {
                jobs: w.jobs,
                busy: w.busy,
                busy_ms: w.busy_ms,
            })
            .collect();
        let tenants: Vec<TenantStat> = s
            .tenants
            .iter()
            .map(|(name, acct)| {
                let mut waits: Vec<u64> = acct.waits_ms.iter().copied().collect();
                waits.sort_unstable();
                TenantStat {
                    tenant: name.clone(),
                    submitted: acct.submitted,
                    completed: acct.completed,
                    wait_p50_ms: percentile(&waits, 50),
                    wait_p95_ms: percentile(&waits, 95),
                }
            })
            .collect();
        (s.queue_depth(), s.running, workers, tenants)
    };
    tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    let cache = shared.cache.stats();
    StatsFrame {
        queue_depth,
        running,
        completed: shared.completed.load(Ordering::Relaxed),
        failed: shared.failed.load(Ordering::Relaxed),
        cancelled: shared.cancelled.load(Ordering::Relaxed),
        rejected: shared.rejected.load(Ordering::Relaxed),
        uptime_ms: shared.start.elapsed().as_millis() as u64,
        workers,
        tenants,
        graph_cache_entries: pei_workloads::cache::len() as u64,
        fork_cache: ForkCacheStat {
            entries: cache.entries,
            bytes: cache.bytes,
            hits: cache.fork.hits,
            misses: cache.fork.misses,
            bypasses: cache.fork.bypasses,
            ineligible: cache.fork.ineligible,
            evictions: cache.evictions,
            evicted_bytes: cache.evicted_bytes,
            capacity_bytes: cache.capacity_bytes,
        },
    }
}

/// The session loop behind [`Daemon::serve`]. Response frames funnel
/// through an mpsc channel into a per-session writer thread, so worker
/// threads never block on (or interleave within) the transport.
fn serve_session<R: BufRead, W: Write + Send + 'static>(
    shared: &Arc<Shared>,
    reader: R,
    writer: W,
) {
    let (tx, rx) = mpsc::channel::<Response>();
    let writer_thread = std::thread::spawn(move || {
        let mut writer = writer;
        for resp in rx {
            if writeln!(writer, "{}", resp.encode()).is_err() {
                break;
            }
            let _ = writer.flush();
        }
    });
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match Request::decode(&line) {
            Err(e) => {
                // A malformed line poisons only itself: report the
                // offset and keep reading.
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(Response::Error {
                    job: None,
                    kind: "bad-frame".to_owned(),
                    message: e.to_string(),
                    violations: Vec::new(),
                });
            }
            Ok(Request::Submit {
                recipe,
                trace,
                tenant,
                priority,
            }) => submit(shared, &tx, &recipe, trace, tenant, priority),
            Ok(Request::Cancel { job }) => {
                let flag = shared.jobs.lock().unwrap().get(&job).map(Arc::clone);
                match flag {
                    Some(flag) => flag.store(true, Ordering::Relaxed),
                    None => {
                        let _ = tx.send(Response::Error {
                            job: Some(job),
                            kind: "unknown-job".to_owned(),
                            message: format!("no queued or running job {job}"),
                            violations: Vec::new(),
                        });
                    }
                }
            }
            Ok(Request::Stats) => {
                let _ = tx.send(Response::Stats(stats_frame(shared)));
            }
            Ok(Request::Shutdown) => {
                // Stop accepting (flag set under the sched lock so no
                // submit can race past a worker's exit check), then
                // sleep until the workers report the last outstanding
                // job done — a condvar wait, not a poll loop, and
                // panic-proof because the guard releases claims on
                // unwind too.
                {
                    let _s = shared.sched.lock().unwrap();
                    shared.shutdown.store(true, Ordering::Relaxed);
                }
                shared.ready.notify_all();
                let mut s = shared.sched.lock().unwrap();
                while s.outstanding > 0 {
                    s = shared.drained.wait(s).unwrap();
                }
                drop(s);
                let _ = tx.send(Response::Bye);
                break;
            }
        }
    }
    // Per-job sender clones keep the writer alive until every job this
    // session submitted has reported; joining here means a returned
    // `serve` call has delivered all its terminal frames.
    drop(tx);
    let _ = writer_thread.join();
}

/// Handles one `submit` frame: resolve, ack, enqueue into the tenant's
/// sub-queue of the requested band.
fn submit(
    shared: &Arc<Shared>,
    tx: &Sender<Response>,
    recipe: &Recipe,
    trace: Option<String>,
    tenant: Option<String>,
    priority: Priority,
) {
    let reject = |kind: &str, message: String| {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        let _ = tx.send(Response::Error {
            job: None,
            kind: kind.to_owned(),
            message,
            violations: Vec::new(),
        });
    };
    let tenant = tenant.unwrap_or_else(|| DEFAULT_TENANT.to_owned());
    if tenant.is_empty() || tenant.len() > 128 {
        return reject(
            "bad-recipe",
            "`tenant` must be 1..=128 bytes (omit it for the default tenant)".to_owned(),
        );
    }
    // The panic-worker test fault is daemon-level: strip it before the
    // simulator vocabulary sees it.
    let mut recipe = recipe.clone();
    let panic = recipe.fault_kinds.iter().any(|k| k == PANIC_WORKER_FAULT);
    if panic {
        recipe.fault_kinds.retain(|k| k != PANIC_WORKER_FAULT);
        if recipe.fault_kinds.is_empty() {
            recipe.fault_seed = None;
        }
    }
    let spec = match resolve_recipe(&recipe) {
        Ok(spec) => spec,
        Err(e) => return reject("bad-recipe", e),
    };
    let capture = match trace {
        None => None,
        Some(path) => match resolve_capture(&recipe) {
            Ok(cs) => Some((cs, path)),
            Err(e) => return reject("bad-recipe", e),
        },
    };
    // Ack and enqueue under the sched lock: a worker can't pop the job
    // (so no result frame can overtake the ack), and the shutdown flag
    // can't flip between the check and the push (so no job is ever
    // stranded in the queue after the workers exit).
    let mut s = shared.sched.lock().unwrap();
    if shared.shutdown.load(Ordering::Relaxed) {
        drop(s);
        return reject("shutting-down", "the daemon is draining".to_owned());
    }
    let id = shared.next_job.fetch_add(1, Ordering::Relaxed) + 1;
    let cancel = Arc::new(AtomicBool::new(false));
    shared.jobs.lock().unwrap().insert(id, Arc::clone(&cancel));
    s.outstanding += 1;
    s.tenants.entry(tenant.clone()).or_default().submitted += 1;
    let _ = tx.send(Response::Ack { job: id });
    s.bands[band_index(priority)].push(
        &tenant,
        Job {
            id,
            spec,
            capture,
            panic,
            cancel,
            reply: tx.clone(),
        },
    );
    drop(s);
    shared.ready.notify_one();
}
