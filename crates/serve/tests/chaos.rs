//! The seeded chaos harness (DESIGN.md §12 "Overload semantics"): one
//! deterministic [`ChaosPlan`] of misbehaving clients — mid-frame
//! disconnects, torn writes, byte-at-a-time slow readers, submit floods
//! past the admission bound, deadline-busting jobs — executed over all
//! three transports the daemon serves: an in-process pipe (the stdio
//! framing), a Unix socket, and TCP.
//!
//! The invariants asserted are interleaving-proof, so the same plan
//! must pass identically on every transport:
//!
//! - accounting partition: `submitted == completed + failed +
//!   cancelled + deadline_exceeded + disconnect_cancelled`, and
//!   `rejected == queue_full + torn tails` (a rejection never becomes
//!   a job);
//! - no leaked worker slot: after the drain, `running == 0`,
//!   `queue_depth == 0`, and every worker reports idle;
//! - every slammed session's accepted jobs are reaped as
//!   `disconnect_cancelled`; every deadline-busting job dies
//!   `deadline-exceeded`; nobody else is cancelled or failed;
//! - a well-behaved control client's results stay byte-identical to the
//!   one-shot run throughout the storm, and the final `shutdown` drains
//!   to `bye`.
//!
//! Choreography: a pinner session first occupies both workers with long
//! jobs (so floods pile into the queue instead of draining, deadlines
//! lapse before their jobs can start, and slammed jobs cannot complete
//! before the reap), then the non-flood chaos clients submit, then —
//! after a beat — the floods hit a queue whose depth is known to be
//! under the bound, guaranteeing both admission (for the choreographed
//! jobs) and overflow (for the floods).

use pei_bench::runner::ForkPolicy;
use pei_bench::service::resolve_recipe;
use pei_serve::chaos::{ChaosBehavior, ChaosKnobs, ChaosPlan, ChaosScript, ReadStyle};
use pei_serve::{Daemon, ServeConfig};
use pei_types::wire::{Priority, Recipe, Request, Response};
use std::io::{BufRead, BufReader, Lines, Read, Write};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const SEED: u64 = 0x0c4a05;
const CLIENTS: usize = 10;
const MAX_QUEUE: u64 = 24;
const BUSTER_DEADLINE_MS: u64 = 150;

fn quick_recipe() -> Recipe {
    let mut r = Recipe::new("atf", "small", "la");
    r.seed = 7;
    r.budget = Some(2_000);
    r
}

/// The long recipe must outlive every deadline and slam in the plan
/// (~1 s wall) in both build profiles: the optimized simulator is ~10x
/// faster and the medium input's trace exhausts at ~430k cycles, so
/// release steps up to the large input.
fn long_recipe() -> Recipe {
    let (size, budget) = if cfg!(debug_assertions) {
        ("medium", 200_000)
    } else {
        ("large", 2_000_000)
    };
    let mut r = Recipe::new("atf", size, "la");
    r.seed = 7;
    r.budget = Some(budget);
    r
}

fn knobs() -> ChaosKnobs {
    ChaosKnobs {
        max_queue: MAX_QUEUE,
        deadline_ms: BUSTER_DEADLINE_MS,
        quick: quick_recipe(),
        long: long_recipe(),
    }
}

fn config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        slice: 2_000,
        fork: ForkPolicy::always(),
        cache_bytes: None,
        max_queue: Some(MAX_QUEUE),
        writer_queue: 16,
        ..ServeConfig::default()
    }
}

/// One client connection: a writer half and a reader half. Dropping
/// both is the slam (or, for a drained session, the graceful close).
struct Conn {
    w: Box<dyn Write + Send>,
    r: Box<dyn Read + Send>,
}

// ---- in-process pipe transport (the stdio framing) ----

struct PipeWriter {
    tx: mpsc::Sender<Vec<u8>>,
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.tx
            .send(buf.to_vec())
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer hung up"))?;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct PipeReader {
    rx: mpsc::Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.buf.len() {
            match self.rx.recv_timeout(Duration::from_secs(60)) {
                Ok(bytes) => {
                    self.buf = bytes;
                    self.pos = 0;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(0),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "pipe idle for 60 s",
                    ))
                }
            }
        }
        let n = (self.buf.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn pipe() -> (PipeWriter, PipeReader) {
    let (tx, rx) = mpsc::channel();
    (
        PipeWriter { tx },
        PipeReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        },
    )
}

// ---- frame helpers ----

fn submit_line(recipe: Recipe, tenant: &str, deadline_ms: Option<u64>) -> String {
    format!(
        "{}\n",
        Request::Submit {
            recipe,
            trace: None,
            tenant: Some(tenant.to_owned()),
            priority: Priority::Normal,
            deadline_ms,
        }
        .encode()
    )
}

fn next_frame(lines: &mut Lines<BufReader<Box<dyn Read + Send>>>) -> Response {
    let line = lines
        .next()
        .expect("the daemon never hangs up on a well-behaved client")
        .expect("the stream stays readable");
    Response::decode(&line).expect("the daemon emits well-formed frames")
}

// ---- client runners ----

/// Executes one chaos client's script: the writes (with their pauses),
/// then the scripted read behavior, then the hangup.
fn run_chaos_client(conn: Conn, script: &ChaosScript) {
    let Conn { mut w, r } = conn;
    for step in &script.writes {
        if step.pause_ms > 0 {
            std::thread::sleep(Duration::from_millis(step.pause_ms));
        }
        if w.write_all(&step.bytes).and_then(|()| w.flush()).is_err() {
            break; // the daemon closed on us; the invariants still hold
        }
    }
    match script.read {
        ReadStyle::Drain => {
            // Every complete submit resolves as an ack + terminal or as
            // a job-less rejection; count resolutions, then hang up.
            let mut resolved = 0;
            let mut lines = BufReader::new(r).lines();
            while resolved < script.submits {
                match next_frame(&mut lines) {
                    Response::Result(_) | Response::Cancelled { .. } | Response::Error { .. } => {
                        resolved += 1
                    }
                    _ => {}
                }
            }
        }
        ReadStyle::ByteAtATime {
            pause_ms,
            max_bytes,
        } => {
            let mut r = r;
            let mut byte = [0u8; 1];
            for _ in 0..max_bytes {
                std::thread::sleep(Duration::from_millis(pause_ms));
                match r.read(&mut byte) {
                    Ok(1..) => {}
                    Ok(0) | Err(_) => break,
                }
            }
        }
        ReadStyle::None => {}
    }
}

/// Submits the two long pinner jobs and signals once both are mid-run
/// (both workers occupied), then drains to their byte-identical results.
fn run_pinner(conn: Conn, long_ref: &str, pinned: &mpsc::Sender<()>) {
    let Conn { mut w, r } = conn;
    for _ in 0..2 {
        w.write_all(submit_line(long_recipe(), "pin", None).as_bytes())
            .expect("pin submits are written");
    }
    w.flush().expect("pin submits are flushed");
    let mut lines = BufReader::new(r).lines();
    let mut running = std::collections::HashSet::new();
    let mut results = 0;
    let mut signalled = false;
    while results < 2 {
        match next_frame(&mut lines) {
            Response::Progress { job, cycle } if cycle > 0 => {
                running.insert(job);
                if running.len() == 2 && !signalled {
                    signalled = true;
                    pinned.send(()).expect("the harness is waiting");
                }
            }
            Response::Result(rf) => {
                assert_eq!(rf.stats, long_ref, "pinner results stay byte-identical");
                results += 1;
            }
            Response::Ack { .. } | Response::Progress { .. } => {}
            other => panic!("a pinner job should complete, got {other:?}"),
        }
    }
    assert!(signalled, "both workers were observed mid-run");
}

/// The well-behaved control client: one deadline-busting job (must die
/// `deadline-exceeded`), then quick jobs submitted one at a time —
/// retrying politely on `queue-full` — whose results must stay
/// byte-identical to the one-shot run all through the storm.
fn run_control(conn: Conn, quick_ref: &str) {
    let Conn { mut w, r } = conn;
    let mut lines = BufReader::new(r).lines();
    w.write_all(submit_line(long_recipe(), "control", Some(100)).as_bytes())
        .and_then(|()| w.flush())
        .expect("the buster submit is written");
    let buster = loop {
        match next_frame(&mut lines) {
            Response::Ack { job } => break job,
            Response::Progress { .. } => {}
            other => panic!("the buster should be acked, got {other:?}"),
        }
    };
    let mut buster_done = false;
    let on_buster_terminal = |kind: &str, done: &mut bool| {
        assert_eq!(kind, "deadline-exceeded", "the buster died on its budget");
        *done = true;
    };
    for _ in 0..3 {
        // Submit one quick job, retrying while the queue is at its
        // bound (the polite reaction to a `queue-full` rejection).
        let id = 'accepted: loop {
            w.write_all(submit_line(quick_recipe(), "control", None).as_bytes())
                .and_then(|()| w.flush())
                .expect("the control submit is written");
            loop {
                match next_frame(&mut lines) {
                    Response::Ack { job } => break 'accepted job,
                    Response::Error {
                        job: None, kind, ..
                    } => {
                        assert_eq!(kind, "queue-full", "the only polite rejection");
                        std::thread::sleep(Duration::from_millis(25));
                        break;
                    }
                    Response::Error {
                        job: Some(j), kind, ..
                    } if j == buster => on_buster_terminal(&kind, &mut buster_done),
                    Response::Progress { .. } => {}
                    other => panic!("unexpected frame for the control client: {other:?}"),
                }
            }
        };
        loop {
            match next_frame(&mut lines) {
                Response::Result(rf) if rf.job == id => {
                    assert_eq!(
                        rf.stats, quick_ref,
                        "control results stay byte-identical mid-storm"
                    );
                    break;
                }
                Response::Error {
                    job: Some(j), kind, ..
                } if j == buster => on_buster_terminal(&kind, &mut buster_done),
                Response::Progress { .. } => {}
                other => panic!("the control job should complete, got {other:?}"),
            }
        }
    }
    while !buster_done {
        match next_frame(&mut lines) {
            Response::Error {
                job: Some(j), kind, ..
            } if j == buster => on_buster_terminal(&kind, &mut buster_done),
            Response::Progress { .. } => {}
            other => panic!("waiting on the buster terminal, got {other:?}"),
        }
    }
}

// ---- the storm ----

/// `lossy_tails` reflects the transport: over an in-process pipe a
/// torn tail always reaches the parser (EOF yields the partial line),
/// but a socket peer that slams with unread data in its receive queue
/// resets the connection and the kernel may discard the tail before
/// the daemon reads it — so sockets only bound the rejection count.
fn storm(daemon: &Arc<Daemon>, connect: &(dyn Fn() -> Conn + Sync), lossy_tails: bool) {
    let quick_ref = resolve_recipe(&quick_recipe())
        .unwrap()
        .run()
        .stats
        .to_string();
    let long_ref = resolve_recipe(&long_recipe())
        .unwrap()
        .run()
        .stats
        .to_string();

    let plan = ChaosPlan::generate(SEED, CLIENTS);
    assert_eq!(
        plan,
        ChaosPlan::generate(SEED, CLIENTS),
        "the plan is a pure function of the seed"
    );
    let k = knobs();
    let scripts: Vec<(ChaosBehavior, ChaosScript)> = plan
        .clients
        .iter()
        .map(|c| (c.behavior, c.script(&k)))
        .collect();
    // The exact counters the daemon must report, derived from the plan.
    let torn_tails: u64 = scripts.iter().filter(|(_, s)| s.torn_tail).count() as u64;
    let slam_submits: u64 = scripts
        .iter()
        .filter(|(_, s)| s.slam)
        .map(|(_, s)| s.submits)
        .sum();
    let buster_submits: u64 = scripts
        .iter()
        .filter(|(b, _)| *b == ChaosBehavior::DeadlineBuster)
        .map(|(_, s)| s.submits)
        .sum();

    std::thread::scope(|scope| {
        let (pinned_tx, pinned_rx) = mpsc::channel();
        let pinner = scope.spawn(move || run_pinner(connect(), &long_ref, &pinned_tx));
        pinned_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("both workers get pinned");

        let control = scope.spawn(|| run_control(connect(), &quick_ref));
        let mut clients = Vec::new();
        // Choreographed admissions first (their queue slots are under
        // the bound), floods after a beat (guaranteed to overflow it).
        for flood_wave in [false, true] {
            for (behavior, script) in &scripts {
                if (*behavior == ChaosBehavior::SubmitFlood) == flood_wave {
                    clients.push(scope.spawn(move || run_chaos_client(connect(), script)));
                }
            }
            if !flood_wave {
                std::thread::sleep(Duration::from_millis(150));
            }
        }
        for c in clients {
            c.join().expect("chaos clients never panic");
        }
        control
            .join()
            .expect("the control client survived the storm");
        pinner.join().expect("the pinner drained its jobs");
    });

    // Slammed sessions' jobs may still be queued or mid-slice; the
    // workers drain them to their `cancelled` terminals.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let s = daemon.stats();
        if s.queue_depth == 0 && s.running == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "the daemon never drained: {s:?}");
        std::thread::sleep(Duration::from_millis(20));
    }

    let stats = daemon.stats();
    assert_eq!(
        stats.submitted,
        stats.completed
            + stats.failed
            + stats.cancelled
            + stats.deadline_exceeded
            + stats.disconnect_cancelled,
        "every accepted job reached exactly one terminal: {stats:?}"
    );
    assert_eq!(stats.failed, 0, "no job failed: {stats:?}");
    assert_eq!(stats.cancelled, 0, "no client sent a cancel: {stats:?}");
    assert_eq!(
        stats.disconnect_cancelled, slam_submits,
        "every slammed session's jobs were reaped, nothing else: {stats:?}"
    );
    assert_eq!(
        stats.deadline_exceeded,
        buster_submits + 1, // the plan's busters plus the control buster
        "every deadline-busting job died on its budget: {stats:?}"
    );
    assert!(stats.queue_full >= 1, "the floods overflowed: {stats:?}");
    if lossy_tails {
        assert!(
            stats.rejected >= stats.queue_full && stats.rejected <= stats.queue_full + torn_tails,
            "rejections are queue-full plus at most the torn tails: {stats:?}"
        );
    } else {
        assert_eq!(
            stats.rejected,
            stats.queue_full + torn_tails,
            "rejections are exactly queue-full plus the torn tails: {stats:?}"
        );
    }
    assert!(
        stats.queue_high_water <= MAX_QUEUE,
        "admission held the bound: {stats:?}"
    );
    assert!(stats.workers.iter().all(|w| !w.busy), "no leaked slot");

    // The storm is over; a clean shutdown must still drain to `bye`.
    let Conn { mut w, r } = connect();
    w.write_all(format!("{}\n", Request::Shutdown.encode()).as_bytes())
        .and_then(|()| w.flush())
        .expect("the shutdown frame is written");
    let mut lines = BufReader::new(r).lines();
    assert!(
        matches!(next_frame(&mut lines), Response::Bye),
        "shutdown answers bye"
    );
    let stats = daemon.stats();
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.running, 0);
    assert!(stats.workers.iter().all(|w| !w.busy));
}

#[test]
fn chaos_storm_over_in_process_pipes() {
    let daemon = Arc::new(Daemon::start(config()));
    let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
    let connect = {
        let daemon = Arc::clone(&daemon);
        let sessions = Arc::clone(&sessions);
        move || {
            let (client_w, daemon_r) = pipe();
            let (daemon_w, client_r) = pipe();
            let daemon = Arc::clone(&daemon);
            sessions.lock().unwrap().push(std::thread::spawn(move || {
                daemon.serve(BufReader::new(daemon_r), daemon_w);
            }));
            Conn {
                w: Box::new(client_w),
                r: Box::new(client_r),
            }
        }
    };
    storm(&daemon, &connect, false);
    for s in sessions.lock().unwrap().drain(..) {
        s.join().expect("every session ended");
    }
}

/// Accepts connections until the daemon's shutdown flag flips (the same
/// poll loop the binary runs), serving each on its own thread.
fn spawn_acceptor(
    daemon: &Arc<Daemon>,
    mut accept: impl FnMut() -> Option<(Box<dyn Read + Send>, Box<dyn Write + Send>)> + Send + 'static,
) -> JoinHandle<()> {
    let daemon = Arc::clone(daemon);
    std::thread::spawn(move || {
        let mut sessions = Vec::new();
        while !daemon.shutdown_requested() {
            match accept() {
                Some((r, w)) => {
                    let daemon = Arc::clone(&daemon);
                    sessions.push(std::thread::spawn(move || {
                        daemon.serve(BufReader::new(r), w);
                    }));
                }
                None => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        for s in sessions {
            s.join().expect("every session ended");
        }
    })
}

#[test]
fn chaos_storm_over_unix_sockets() {
    let dir = std::env::temp_dir().join("pei-serve-chaos");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("chaos-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let daemon = Arc::new(Daemon::start(config()));
    let listener = std::os::unix::net::UnixListener::bind(&path).expect("bind the socket");
    listener.set_nonblocking(true).unwrap();
    let acceptor = spawn_acceptor(&daemon, move || {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return None,
            Err(e) => panic!("accept failed: {e}"),
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let r = stream.try_clone().expect("socket handles clone");
        Some((Box::new(r), Box::new(stream)))
    });

    let connect = {
        let path = path.clone();
        move || {
            let stream =
                std::os::unix::net::UnixStream::connect(&path).expect("connect to the daemon");
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            let w = stream.try_clone().expect("socket handles clone");
            Conn {
                w: Box::new(w),
                r: Box::new(stream),
            }
        }
    };
    storm(&daemon, &connect, true);
    acceptor.join().expect("the acceptor wound down");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn chaos_storm_over_tcp() {
    let daemon = Arc::new(Daemon::start(config()));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    listener.set_nonblocking(true).unwrap();
    let acceptor = spawn_acceptor(&daemon, move || {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return None,
            Err(e) => panic!("accept failed: {e}"),
        };
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let r = stream.try_clone().expect("socket handles clone");
        Some((Box::new(r), Box::new(stream)))
    });

    let connect = move || {
        let stream = std::net::TcpStream::connect(addr).expect("connect to the daemon");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let w = stream.try_clone().expect("socket handles clone");
        Conn {
            w: Box::new(w),
            r: Box::new(stream),
        }
    };
    storm(&daemon, &connect, true);
    acceptor.join().expect("the acceptor wound down");
}
