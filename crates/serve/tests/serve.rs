//! End-to-end daemon tests: scripted sessions over in-process
//! transports, pinning the wire contract of DESIGN.md §12 — every
//! result byte-identical to its one-shot equivalent, failures and
//! malformed frames as structured errors with the daemon still alive,
//! and cancellation that leaves the resident caches intact.

use pei_bench::runner::ForkPolicy;
use pei_bench::service::resolve_recipe;
use pei_serve::{Daemon, ServeConfig, PANIC_WORKER_FAULT};
use pei_trace::Trace;
use pei_types::wire::{Priority, Recipe, Request, Response};
use std::io::{BufReader, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A reader that reveals each request line after an optional delay —
/// how the tests steer *when* a cancel lands relative to a running job.
struct Paced {
    parts: std::vec::IntoIter<(u64, String)>,
    buf: Vec<u8>,
    pos: usize,
}

impl Paced {
    fn new(script: Vec<(u64, Request)>) -> Paced {
        Paced {
            parts: script
                .into_iter()
                .map(|(ms, req)| (ms, format!("{}\n", req.encode())))
                .collect::<Vec<_>>()
                .into_iter(),
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl Read for Paced {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.buf.len() {
            let Some((delay, line)) = self.parts.next() else {
                return Ok(0);
            };
            if delay > 0 {
                std::thread::sleep(Duration::from_millis(delay));
            }
            self.buf = line.into_bytes();
            self.pos = 0;
        }
        let n = (self.buf.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A `Write` the test can read back after the session returns.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs one scripted session to completion and decodes every response
/// frame. `Daemon::serve` returns only after all terminal frames are
/// delivered, so the decoded list is complete.
fn run_session(daemon: &Daemon, script: Vec<(u64, Request)>) -> Vec<Response> {
    let out = SharedBuf::default();
    daemon.serve(BufReader::new(Paced::new(script)), out.clone());
    let bytes = out.0.lock().unwrap().clone();
    String::from_utf8(bytes)
        .expect("frames are UTF-8")
        .lines()
        .map(|l| Response::decode(l).expect("daemon emits well-formed frames"))
        .collect()
}

/// A sub-second recipe (the same cell the bench service tests use).
fn quick_recipe(policy: &str) -> Recipe {
    let mut r = Recipe::new("atf", "small", policy);
    r.seed = 7;
    r.budget = Some(2_000);
    r
}

fn submit(recipe: Recipe) -> (u64, Request) {
    (
        0,
        Request::Submit {
            recipe,
            trace: None,
            tenant: None,
            priority: Priority::Normal,
            deadline_ms: None,
        },
    )
}

fn submit_as(recipe: Recipe, tenant: &str, priority: Priority) -> (u64, Request) {
    (
        0,
        Request::Submit {
            recipe,
            trace: None,
            tenant: Some(tenant.to_owned()),
            priority,
            deadline_ms: None,
        },
    )
}

/// The terminal frame of `job`, with every non-terminal frame checked
/// on the way.
fn terminal_for(responses: &[Response], job: u64) -> &Response {
    let mut terminal = None;
    for r in responses {
        match r {
            Response::Progress { job: j, .. } if *j == job => {
                assert!(terminal.is_none(), "heartbeat after the terminal frame");
            }
            Response::Result(rf) if rf.job == job => terminal = Some(r),
            Response::Cancelled { job: j, .. } | Response::Error { job: Some(j), .. }
                if *j == job =>
            {
                terminal = Some(r)
            }
            _ => {}
        }
    }
    terminal.unwrap_or_else(|| panic!("job {job} never reached a terminal frame: {responses:?}"))
}

fn forked_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        slice: 5_000,
        fork: ForkPolicy::always(),
        cache_bytes: None,
        ..ServeConfig::default()
    }
}

#[test]
fn submitted_recipe_is_byte_identical_to_the_one_shot_run() {
    let recipe = quick_recipe("la");
    let reference = resolve_recipe(&recipe).unwrap().run();

    let daemon = Daemon::start(forked_config(1));
    let responses = run_session(
        &daemon,
        vec![submit(recipe), (0, Request::Stats), (0, Request::Shutdown)],
    );

    assert!(
        matches!(responses.first(), Some(Response::Ack { job: 1 })),
        "ack comes first: {responses:?}"
    );
    match terminal_for(&responses, 1) {
        Response::Result(r) => {
            assert_eq!(r.stats, reference.stats.to_string(), "byte-identity");
            assert_eq!(r.cycles, reference.cycles);
            assert_eq!(r.instructions, reference.instructions);
            assert_eq!(r.peis, reference.peis);
            assert_eq!(r.offchip_bytes, reference.offchip_bytes);
            assert_eq!(r.offchip_flits, reference.offchip_flits);
            assert_eq!(r.dram_accesses, reference.dram_accesses);
            assert!(r.trace.is_none());
        }
        other => panic!("expected a result frame, got {other:?}"),
    }
    let stats = responses
        .iter()
        .find_map(|r| match r {
            Response::Stats(s) => Some(s),
            _ => None,
        })
        .expect("the stats request was answered");
    assert_eq!(stats.workers.len(), 1);
    assert!(
        stats.graph_cache_entries >= 1,
        "the input graph stayed resident"
    );
    assert!(
        matches!(responses.last(), Some(Response::Bye)),
        "shutdown answers bye last: {responses:?}"
    );
}

#[test]
fn concurrent_sessions_interleave_without_losing_byte_identity() {
    // Sessions A and B submit four policies of one cell — la and lab
    // share a fork key, so the daemon serves at least one of them from
    // a restored snapshot. Session C injects a checked-mode fault,
    // which must come back as a structured error frame *and leave the
    // daemon serving*: C's second, healthy submission completes.
    let reference = |policy: &str| resolve_recipe(&quick_recipe(policy)).unwrap().run();
    let daemon = Arc::new(Daemon::start(forked_config(2)));

    let mut faulty = quick_recipe("la");
    faulty.check = true;
    faulty.fault_seed = Some(13);
    faulty.fault_kinds = vec!["corrupt-line".into()];

    // Sessions must stay connected until their terminals arrive: an EOF
    // with jobs still outstanding is a disconnect, and the daemon reaps
    // (cancels) the orphaned work. Each session here submits, waits for
    // all its terminal frames, and only then hangs up.
    let spawn = |recipes: Vec<Recipe>| {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || {
            let expected = recipes.len();
            let (tx, rx) = std::sync::mpsc::channel();
            let out = SharedBuf::default();
            let session = {
                let daemon = Arc::clone(&daemon);
                let out = out.clone();
                std::thread::spawn(move || {
                    daemon.serve(
                        BufReader::new(ChannelReader {
                            rx,
                            buf: Vec::new(),
                            pos: 0,
                        }),
                        out,
                    );
                })
            };
            for (_, req) in recipes.into_iter().map(submit) {
                tx.send(req).expect("session is reading");
            }
            let deadline = std::time::Instant::now() + Duration::from_secs(120);
            loop {
                let bytes = out.0.lock().unwrap().clone();
                let text = String::from_utf8(bytes).expect("frames are UTF-8");
                let complete = &text[..text.rfind('\n').map_or(0, |i| i + 1)];
                let terminals = complete
                    .lines()
                    .map(|l| Response::decode(l).expect("well-formed frames"))
                    .filter(|r| {
                        matches!(
                            r,
                            Response::Result(_)
                                | Response::Cancelled { .. }
                                | Response::Error { .. }
                        )
                    })
                    .count();
                if terminals == expected {
                    break;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "timed out waiting for {expected} terminals; saw:\n{text}"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            drop(tx);
            session.join().unwrap();
            let bytes = out.0.lock().unwrap().clone();
            String::from_utf8(bytes)
                .unwrap()
                .lines()
                .map(|l| Response::decode(l).unwrap())
                .collect::<Vec<Response>>()
        })
    };
    let a = spawn(vec![quick_recipe("la"), quick_recipe("lab")]);
    let b = spawn(vec![quick_recipe("host"), quick_recipe("pim")]);
    let c = spawn(vec![faulty, quick_recipe("pim")]);
    let (a, b, c) = (a.join().unwrap(), b.join().unwrap(), c.join().unwrap());

    // Job ids are daemon-global; recover each session's ids in order.
    let ids = |responses: &[Response]| -> Vec<u64> {
        responses
            .iter()
            .filter_map(|r| match r {
                Response::Ack { job } => Some(*job),
                _ => None,
            })
            .collect()
    };
    for (responses, policies) in [(&a, ["la", "lab"]), (&b, ["host", "pim"])] {
        for (job, policy) in ids(responses).into_iter().zip(policies) {
            match terminal_for(responses, job) {
                Response::Result(r) => {
                    assert_eq!(
                        r.stats,
                        reference(policy).stats.to_string(),
                        "{policy} under concurrency"
                    );
                }
                other => panic!("{policy} should complete, got {other:?}"),
            }
        }
    }
    let c_ids = ids(&c);
    match terminal_for(&c, c_ids[0]) {
        Response::Error {
            kind, violations, ..
        } => {
            assert_eq!(kind, "check-failed", "the mesi auditor catches the fault");
            assert!(
                violations.iter().any(|v| v.contains("mesi")),
                "violations name the checker: {violations:?}"
            );
        }
        other => panic!("the faulted run should fail, got {other:?}"),
    }
    match terminal_for(&c, c_ids[1]) {
        Response::Result(r) => assert_eq!(r.stats, reference("pim").stats.to_string()),
        other => panic!("the daemon must keep serving after a failure, got {other:?}"),
    }

    let stats = daemon.stats();
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.failed, 1);
    assert!(
        stats.fork_cache.hits >= 1,
        "la/lab share a fork key: {:?}",
        stats.fork_cache
    );
}

/// A reader fed line by line from the test thread, so a request can be
/// held back until the daemon's output shows the right moment to send
/// it (e.g. a cancel after the victim's first heartbeat).
struct ChannelReader {
    rx: std::sync::mpsc::Receiver<Request>,
    buf: Vec<u8>,
    pos: usize,
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.buf.len() {
            let Ok(req) = self.rx.recv() else {
                return Ok(0);
            };
            self.buf = format!("{}\n", req.encode()).into_bytes();
            self.pos = 0;
        }
        let n = (self.buf.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Polls the session's output until a complete frame satisfies `pred`.
fn wait_for(out: &SharedBuf, what: &str, pred: impl Fn(&Response) -> bool) -> Response {
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let bytes = out.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("frames are UTF-8");
        // Only lines already terminated by \n are complete frames.
        let complete = &text[..text.rfind('\n').map_or(0, |i| i + 1)];
        for line in complete.lines() {
            let r = Response::decode(line).expect("daemon emits well-formed frames");
            if pred(&r) {
                return r;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}; saw:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn cancel_stops_queued_and_running_jobs_and_spares_the_cache() {
    // One worker: job 1 (a run of over a second) occupies it, job 2
    // waits queued. Cancelling 2 immediately kills it before it starts
    // (cycle 0); job 1 is cancelled only after its first heartbeat
    // proves it is mid-run, so its cancel cycle must be > 0. Job 3 must
    // then run clean through the same cache.
    let mut long = quick_recipe("la");
    long.size = "medium".to_owned();
    long.budget = Some(200_000);
    let reference = resolve_recipe(&quick_recipe("la")).unwrap().run();

    let daemon = Arc::new(Daemon::start(forked_config(1)));
    let (tx, rx) = std::sync::mpsc::channel();
    let out = SharedBuf::default();
    let session = {
        let daemon = Arc::clone(&daemon);
        let out = out.clone();
        std::thread::spawn(move || {
            daemon.serve(
                BufReader::new(ChannelReader {
                    rx,
                    buf: Vec::new(),
                    pos: 0,
                }),
                out,
            );
        })
    };
    let send = |req: Request| tx.send(req).expect("session is reading");

    send(Request::Submit {
        recipe: long.clone(),
        trace: None,
        tenant: None,
        priority: Priority::Normal,
        deadline_ms: None,
    });
    send(Request::Submit {
        recipe: long,
        trace: None,
        tenant: None,
        priority: Priority::Normal,
        deadline_ms: None,
    });
    send(Request::Cancel { job: 2 });
    wait_for(
        &out,
        "job 1's first heartbeat",
        |r| matches!(r, Response::Progress { job: 1, cycle } if *cycle > 0),
    );
    send(Request::Cancel { job: 1 });
    wait_for(&out, "job 1's cancellation", |r| {
        matches!(r, Response::Cancelled { job: 1, .. })
    });
    send(Request::Submit {
        recipe: quick_recipe("la"),
        trace: None,
        tenant: None,
        priority: Priority::Normal,
        deadline_ms: None,
    });
    send(Request::Shutdown);
    session.join().unwrap();

    let bytes = out.0.lock().unwrap().clone();
    let responses: Vec<Response> = String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(|l| Response::decode(l).unwrap())
        .collect();

    match terminal_for(&responses, 2) {
        Response::Cancelled { cycle, .. } => {
            assert_eq!(*cycle, 0, "job 2 never started");
        }
        other => panic!("job 2 should be cancelled, got {other:?}"),
    }
    match terminal_for(&responses, 1) {
        Response::Cancelled { cycle, .. } => {
            assert!(*cycle > 0, "job 1 was cancelled mid-run");
        }
        other => panic!("job 1 should be cancelled, got {other:?}"),
    }
    match terminal_for(&responses, 3) {
        Response::Result(r) => assert_eq!(r.stats, reference.stats.to_string()),
        other => panic!("job 3 should complete, got {other:?}"),
    }

    let stats = daemon.stats();
    assert_eq!(stats.cancelled, 2);
    assert_eq!(stats.completed, 1);
    // Job 1's budget differs from job 3's, so their fork keys differ;
    // what matters is that the cancelled jobs corrupted nothing and the
    // cache still serves. Job 2 died while queued and never touched the
    // cache, so the counters partition the two jobs that executed.
    let fc = &stats.fork_cache;
    assert_eq!(fc.hits + fc.misses + fc.bypasses + fc.ineligible, 2);
    assert!(fc.entries >= 1, "job 1's snapshot stayed resident: {fc:?}");
}

#[test]
fn malformed_frames_and_unknown_jobs_error_without_killing_the_session() {
    let daemon = Daemon::start(ServeConfig::default());
    let garbage = (0, Request::Stats); // placeholder, replaced below
    let mut script = Paced::new(vec![
        garbage,
        (0, Request::Cancel { job: 99 }),
        (0, Request::Shutdown),
    ]);
    // Swap the first line for raw garbage the typed script can't express.
    script.buf = b"{\"type\" oops\n".to_vec();

    let out = SharedBuf::default();
    daemon.serve(BufReader::new(script), out.clone());
    let bytes = out.0.lock().unwrap().clone();
    let responses: Vec<Response> = String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(|l| Response::decode(l).unwrap())
        .collect();

    match &responses[0] {
        Response::Error {
            job: None,
            kind,
            message,
            ..
        } => {
            assert_eq!(kind, "bad-frame");
            assert!(message.contains("byte"), "offset reported: {message}");
        }
        other => panic!("garbage should error, got {other:?}"),
    }
    // The stats frame from the placeholder request proves the session
    // survived the garbage...
    assert!(matches!(&responses[1], Response::Stats(s) if s.rejected == 1));
    // ...as does the unknown-job error after it...
    match &responses[2] {
        Response::Error { kind, .. } => assert_eq!(kind, "unknown-job"),
        other => panic!("cancelling job 99 should error, got {other:?}"),
    }
    // ...and shutdown still answers.
    assert!(matches!(responses.last(), Some(Response::Bye)));
}

#[test]
fn bad_recipes_are_rejected_as_structured_errors() {
    let daemon = Daemon::start(ServeConfig::default());
    let mut traced_checked = quick_recipe("la");
    traced_checked.check = true;
    let responses = run_session(
        &daemon,
        vec![
            submit(quick_recipe("warp-speed")),
            (
                0,
                Request::Submit {
                    recipe: traced_checked,
                    trace: Some("/tmp/should-not-exist.petr".into()),
                    tenant: None,
                    priority: Priority::Normal,
                    deadline_ms: None,
                },
            ),
            (0, Request::Shutdown),
        ],
    );
    match &responses[0] {
        Response::Error {
            job: None,
            kind,
            message,
            ..
        } => {
            assert_eq!(kind, "bad-recipe");
            assert!(message.contains("policy"), "{message}");
        }
        other => panic!("unknown policy should reject, got {other:?}"),
    }
    match &responses[1] {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, "bad-recipe");
            assert!(message.contains("check"), "{message}");
        }
        other => panic!("traced+checked should reject, got {other:?}"),
    }
    assert_eq!(daemon.stats().rejected, 2);
}

#[test]
fn traced_submissions_write_a_replayable_capture() {
    let dir = std::env::temp_dir().join("pei-serve-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("atf-la.petr");
    let _ = std::fs::remove_file(&path);

    let daemon = Daemon::start(ServeConfig::default());
    let responses = run_session(
        &daemon,
        vec![
            (
                0,
                Request::Submit {
                    recipe: quick_recipe("la"),
                    trace: Some(path.to_string_lossy().into_owned()),
                    tenant: None,
                    priority: Priority::Normal,
                    deadline_ms: None,
                },
            ),
            (0, Request::Shutdown),
        ],
    );
    let frame = match terminal_for(&responses, 1) {
        Response::Result(r) => r,
        other => panic!("traced run should complete, got {other:?}"),
    };
    assert_eq!(frame.trace.as_deref(), Some(&*path.to_string_lossy()));

    let trace = Trace::from_bytes(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(trace.meta_get("spec.workload"), Some("ATF"));
    assert_eq!(
        trace.meta_get("stats"),
        Some(frame.stats.as_str()),
        "the capture's stats metadata equals the wire stats"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_panicking_worker_reports_the_job_failed_and_the_daemon_drains() {
    // Job 1 carries the test-only panic fault; job 2 is healthy and
    // shares the single worker. The panic must surface as a terminal
    // `worker-panic` error frame, the worker must survive to run job 2,
    // and shutdown must drain to `bye` instead of hanging on the
    // accounting the panicking job abandoned.
    let mut bomb = quick_recipe("la");
    bomb.fault_kinds = vec![PANIC_WORKER_FAULT.to_owned()];
    let reference = resolve_recipe(&quick_recipe("la")).unwrap().run();

    let daemon = Daemon::start(forked_config(1));
    let responses = run_session(
        &daemon,
        vec![
            submit(bomb),
            submit(quick_recipe("la")),
            (0, Request::Shutdown),
        ],
    );

    match terminal_for(&responses, 1) {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, "worker-panic");
            assert!(message.contains("job 1"), "{message}");
        }
        other => panic!("the panicking job should fail, got {other:?}"),
    }
    match terminal_for(&responses, 2) {
        Response::Result(r) => {
            assert_eq!(r.stats, reference.stats.to_string(), "the worker survived");
        }
        other => panic!("the healthy job should complete, got {other:?}"),
    }
    assert!(
        matches!(responses.last(), Some(Response::Bye)),
        "shutdown drained to bye after the panic: {responses:?}"
    );

    let stats = daemon.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.running, 0, "the panicking job's claim was released");
    assert_eq!(stats.queue_depth, 0);
    assert!(
        stats.workers.iter().all(|w| !w.busy),
        "no slot stays marked busy after an unwind: {:?}",
        stats.workers
    );
}

#[test]
fn eviction_under_a_starved_byte_budget_is_byte_identical_to_cold() {
    // A one-byte budget evicts every warm snapshot the moment it is
    // inserted, so each submission takes the cold path end to end. The
    // results must stay byte-identical to the one-shot run — eviction
    // is a memory policy, never a semantic one.
    let reference = resolve_recipe(&quick_recipe("la")).unwrap().run();
    let daemon = Daemon::start(ServeConfig {
        workers: 1,
        slice: 5_000,
        fork: ForkPolicy::always(),
        cache_bytes: Some(1),
        ..ServeConfig::default()
    });
    let responses = run_session(
        &daemon,
        vec![
            submit(quick_recipe("la")),
            submit(quick_recipe("la")),
            (0, Request::Shutdown),
        ],
    );
    for job in [1, 2] {
        match terminal_for(&responses, job) {
            Response::Result(r) => {
                assert_eq!(r.stats, reference.stats.to_string(), "job {job}");
            }
            other => panic!("job {job} should complete, got {other:?}"),
        }
    }
    let fc = daemon.stats().fork_cache;
    assert_eq!(fc.hits, 0, "nothing stays resident to hit: {fc:?}");
    assert_eq!(fc.misses, 2, "both runs re-warmed from cold: {fc:?}");
    assert_eq!(fc.evictions, 2, "each insert was evicted at once: {fc:?}");
    assert_eq!(fc.entries, 0);
    assert_eq!(fc.capacity_bytes, 1);
    assert!(fc.evicted_bytes > 0);
}

#[test]
fn tenants_drain_round_robin_within_bands_and_high_priority_preempts_the_queue() {
    // One worker; a filler job pins it while the backlog builds, so the
    // drain order is decided purely by the scheduler: tenant a queues
    // four jobs, then tenant b queues four, then tenant c queues one at
    // high priority. The high job runs first, and a/b alternate under
    // deficit round-robin even though a's whole burst arrived earlier.
    let mut filler = quick_recipe("la");
    filler.size = "medium".to_owned();
    filler.budget = Some(200_000);

    let daemon = Arc::new(Daemon::start(forked_config(1)));
    let (tx, rx) = std::sync::mpsc::channel();
    let out = SharedBuf::default();
    let session = {
        let daemon = Arc::clone(&daemon);
        let out = out.clone();
        std::thread::spawn(move || {
            daemon.serve(
                BufReader::new(ChannelReader {
                    rx,
                    buf: Vec::new(),
                    pos: 0,
                }),
                out,
            );
        })
    };
    let send = |req: Request| tx.send(req).expect("session is reading");

    send(submit_as(filler, "a", Priority::Normal).1);
    wait_for(
        &out,
        "the filler's first heartbeat",
        |r| matches!(r, Response::Progress { job: 1, cycle } if *cycle > 0),
    );
    // The worker is pinned mid-run; everything below queues up.
    for _ in 0..4 {
        send(submit_as(quick_recipe("la"), "a", Priority::Normal).1);
    }
    for _ in 0..4 {
        send(submit_as(quick_recipe("la"), "b", Priority::Normal).1);
    }
    send(submit_as(quick_recipe("la"), "c", Priority::High).1);
    send(Request::Stats);
    send(Request::Shutdown);
    session.join().unwrap();

    let bytes = out.0.lock().unwrap().clone();
    let responses: Vec<Response> = String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(|l| Response::decode(l).unwrap())
        .collect();
    let completion_order: Vec<u64> = responses
        .iter()
        .filter_map(|r| match r {
            Response::Result(rf) => Some(rf.job),
            _ => None,
        })
        .collect();
    // Jobs 2–5 are a's, 6–9 are b's, 10 is c's high-priority job.
    assert_eq!(
        completion_order,
        vec![1, 10, 2, 6, 3, 7, 4, 8, 5, 9],
        "high drains first, then a/b alternate under DRR"
    );

    let stats = responses
        .iter()
        .find_map(|r| match r {
            Response::Stats(s) => Some(s.clone()),
            _ => None,
        })
        .expect("the stats request was answered");
    let tenant = |name: &str| {
        stats
            .tenants
            .iter()
            .find(|t| t.tenant == name)
            .unwrap_or_else(|| panic!("tenant {name} missing: {:?}", stats.tenants))
    };
    assert_eq!(tenant("a").submitted, 5, "filler plus the burst of four");
    assert_eq!(tenant("b").submitted, 4);
    assert_eq!(tenant("c").submitted, 1);
    let names: Vec<&str> = stats.tenants.iter().map(|t| t.tenant.as_str()).collect();
    assert_eq!(names, vec!["a", "b", "c"], "tenants are reported sorted");

    // After the session drains, every submission completed and the
    // queued bursts show a non-zero measured wait behind the filler.
    let stats = daemon.stats();
    for name in ["a", "b", "c"] {
        let t = stats
            .tenants
            .iter()
            .find(|t| t.tenant == name)
            .unwrap_or_else(|| panic!("tenant {name} missing after drain"));
        assert_eq!(t.completed, t.submitted, "{name} drained");
        if name != "a" {
            assert!(t.wait_p50_ms > 0, "{name} queued behind the filler: {t:?}");
        }
        assert!(t.wait_p95_ms >= t.wait_p50_ms, "{name}: {t:?}");
    }
}

#[test]
fn a_tcp_session_is_byte_identical_to_an_in_process_session() {
    // Two fresh daemons with the same config run the same script: one
    // over an in-process reader/writer pair, one over a real TCP
    // socket. Both start their job counters at 1, so every frame —
    // acks, results, bye — must match byte for byte; the transport is
    // invisible to the wire contract.
    let script = || {
        vec![
            submit(quick_recipe("la")),
            submit(quick_recipe("pim")),
            (0, Request::Shutdown),
        ]
    };
    let reference_daemon = Daemon::start(forked_config(1));
    let reference_out = SharedBuf::default();
    reference_daemon.serve(BufReader::new(Paced::new(script())), reference_out.clone());
    let reference_bytes = reference_out.0.lock().unwrap().clone();

    let daemon = Arc::new(Daemon::start(forked_config(1)));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("one client connects");
            let reading = stream.try_clone().expect("split the stream");
            daemon.serve(BufReader::new(reading), stream);
        })
    };

    let mut client = std::net::TcpStream::connect(addr).expect("connect to the daemon");
    for (_, req) in script() {
        client
            .write_all(format!("{}\n", req.encode()).as_bytes())
            .expect("send a frame");
    }
    client.flush().unwrap();
    let mut tcp_bytes = Vec::new();
    client
        .read_to_end(&mut tcp_bytes)
        .expect("read the session to EOF");
    server.join().unwrap();

    assert_eq!(
        String::from_utf8_lossy(&tcp_bytes),
        String::from_utf8_lossy(&reference_bytes),
        "the TCP transport changes no frame"
    );
    assert_eq!(tcp_bytes, reference_bytes);
}

fn submit_deadline(recipe: Recipe, deadline_ms: u64) -> (u64, Request) {
    (
        0,
        Request::Submit {
            recipe,
            trace: None,
            tenant: None,
            priority: Priority::Normal,
            deadline_ms: Some(deadline_ms),
        },
    )
}

/// The long-running filler recipe the overload tests use to pin a
/// worker for around a second of wall clock. The deadline tests need it
/// to outlast a few-hundred-millisecond budget in both build profiles;
/// the optimized simulator is ~10x faster and the medium input's trace
/// exhausts at ~430k cycles, so release steps up to the large input.
fn long_recipe() -> Recipe {
    let mut r = quick_recipe("la");
    if cfg!(debug_assertions) {
        r.size = "medium".to_owned();
        r.budget = Some(200_000);
    } else {
        r.size = "large".to_owned();
        r.budget = Some(2_000_000);
    }
    r
}

#[test]
fn submissions_past_the_queue_bound_are_rejected_queue_full() {
    // One worker, `max_queue` 1: the filler pins the worker (a running
    // job no longer counts against the bound), job 2 occupies the only
    // queue slot, and job 3 must be turned away with a structured
    // `queue-full` error — rejected at admission, never becoming a job.
    let reference = resolve_recipe(&quick_recipe("la")).unwrap().run();
    let daemon = Arc::new(Daemon::start(ServeConfig {
        workers: 1,
        slice: 5_000,
        fork: ForkPolicy::always(),
        cache_bytes: None,
        max_queue: Some(1),
        ..ServeConfig::default()
    }));
    let (tx, rx) = std::sync::mpsc::channel();
    let out = SharedBuf::default();
    let session = {
        let daemon = Arc::clone(&daemon);
        let out = out.clone();
        std::thread::spawn(move || {
            daemon.serve(
                BufReader::new(ChannelReader {
                    rx,
                    buf: Vec::new(),
                    pos: 0,
                }),
                out,
            );
        })
    };
    let send = |req: Request| tx.send(req).expect("session is reading");

    send(submit(long_recipe()).1);
    wait_for(
        &out,
        "the filler's first heartbeat",
        |r| matches!(r, Response::Progress { job: 1, cycle } if *cycle > 0),
    );
    send(submit(quick_recipe("la")).1);
    wait_for(&out, "job 2's ack", |r| {
        matches!(r, Response::Ack { job: 2 })
    });
    send(submit(quick_recipe("la")).1);
    let rejection = wait_for(
        &out,
        "the queue-full rejection",
        |r| matches!(r, Response::Error { job: None, kind, .. } if kind == "queue-full"),
    );
    match rejection {
        Response::Error { message, .. } => {
            assert!(message.contains("1 jobs"), "the bound is named: {message}");
        }
        other => panic!("expected the rejection frame, got {other:?}"),
    }
    send(Request::Cancel { job: 1 });
    send(Request::Shutdown);
    session.join().unwrap();

    let bytes = out.0.lock().unwrap().clone();
    let responses: Vec<Response> = String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(|l| Response::decode(l).unwrap())
        .collect();
    match terminal_for(&responses, 2) {
        Response::Result(r) => {
            assert_eq!(
                r.stats,
                reference.stats.to_string(),
                "job 2 still ran clean"
            );
        }
        other => panic!("job 2 should complete, got {other:?}"),
    }
    assert!(matches!(responses.last(), Some(Response::Bye)));

    let stats = daemon.stats();
    assert_eq!(stats.submitted, 2, "the rejected submit never became a job");
    assert_eq!(stats.queue_full, 1);
    assert_eq!(stats.rejected, 1, "queue-full rejections count as rejected");
    assert_eq!(stats.queue_high_water, 1, "depth never exceeded the bound");
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(
        stats.submitted,
        stats.completed
            + stats.failed
            + stats.cancelled
            + stats.deadline_exceeded
            + stats.disconnect_cancelled,
        "the accounting partition balances"
    );
}

#[test]
fn deadlines_bound_running_and_queued_jobs_and_spare_the_cache() {
    // One worker. Job 1 is a >1 s run with a 300 ms budget: it must be
    // abandoned mid-run at a slice boundary. Job 2 (200 ms budget)
    // spends longer than that queued behind job 1, so it must die on
    // the pre-check without simulating a cycle. Job 3 is healthy and
    // must stay byte-identical — a lapsed deadline never corrupts the
    // resident caches.
    let reference = resolve_recipe(&quick_recipe("la")).unwrap().run();
    let daemon = Daemon::start(forked_config(1));
    let responses = run_session(
        &daemon,
        vec![
            submit_deadline(long_recipe(), 300),
            submit_deadline(long_recipe(), 200),
            submit(quick_recipe("la")),
            (0, Request::Shutdown),
        ],
    );
    match terminal_for(&responses, 1) {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, "deadline-exceeded");
            assert!(message.contains("300 ms"), "{message}");
            assert!(
                !message.contains("at cycle 0;"),
                "job 1 was abandoned mid-run: {message}"
            );
        }
        other => panic!("job 1 should exceed its deadline, got {other:?}"),
    }
    match terminal_for(&responses, 2) {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, "deadline-exceeded");
            assert!(
                message.contains("at cycle 0;"),
                "job 2 expired while queued: {message}"
            );
        }
        other => panic!("job 2 should expire queued, got {other:?}"),
    }
    match terminal_for(&responses, 3) {
        Response::Result(r) => assert_eq!(r.stats, reference.stats.to_string()),
        other => panic!("job 3 should complete, got {other:?}"),
    }
    let stats = daemon.stats();
    assert_eq!(stats.deadline_exceeded, 2);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 0, "deadlines are not client cancels");
    assert_eq!(stats.failed, 0);

    // The daemon-wide default budget applies when a submit names none.
    let daemon = Daemon::start(ServeConfig {
        workers: 1,
        slice: 5_000,
        fork: ForkPolicy::always(),
        cache_bytes: None,
        deadline_ms: Some(200),
        ..ServeConfig::default()
    });
    let responses = run_session(&daemon, vec![submit(long_recipe()), (0, Request::Shutdown)]);
    match terminal_for(&responses, 1) {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, "deadline-exceeded");
            assert!(message.contains("200 ms"), "{message}");
        }
        other => panic!("the default budget should apply, got {other:?}"),
    }
    assert_eq!(daemon.stats().deadline_exceeded, 1);
}

#[test]
fn a_vanishing_client_gets_its_queued_and_running_jobs_reaped() {
    // One worker; the session starts a long job, queues a second, and
    // then disconnects (reader EOF, no shutdown frame). Both jobs must
    // be cancelled through the disconnect path — freeing the worker —
    // and a later well-behaved session must run byte-identically.
    let reference = resolve_recipe(&quick_recipe("la")).unwrap().run();
    let daemon = Arc::new(Daemon::start(forked_config(1)));
    let (tx, rx) = std::sync::mpsc::channel();
    let out = SharedBuf::default();
    let session = {
        let daemon = Arc::clone(&daemon);
        let out = out.clone();
        std::thread::spawn(move || {
            daemon.serve(
                BufReader::new(ChannelReader {
                    rx,
                    buf: Vec::new(),
                    pos: 0,
                }),
                out,
            );
        })
    };
    tx.send(submit(long_recipe()).1).unwrap();
    tx.send(submit(long_recipe()).1).unwrap();
    wait_for(
        &out,
        "job 1's first heartbeat",
        |r| matches!(r, Response::Progress { job: 1, cycle } if *cycle > 0),
    );
    drop(tx); // the client vanishes mid-job
    session.join().unwrap();

    // `serve` returns only after the reaped jobs delivered terminals.
    let bytes = out.0.lock().unwrap().clone();
    let responses: Vec<Response> = String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(|l| Response::decode(l).unwrap())
        .collect();
    match terminal_for(&responses, 1) {
        Response::Cancelled { cycle, .. } => {
            assert!(*cycle > 0, "job 1 was reaped mid-run");
        }
        other => panic!("job 1 should be reaped, got {other:?}"),
    }
    match terminal_for(&responses, 2) {
        Response::Cancelled { cycle, .. } => {
            assert_eq!(*cycle, 0, "job 2 was reaped while queued");
        }
        other => panic!("job 2 should be reaped, got {other:?}"),
    }

    let stats = daemon.stats();
    assert_eq!(stats.disconnect_cancelled, 2);
    assert_eq!(stats.cancelled, 0, "no client cancel was involved");
    assert_eq!(stats.running, 0, "no leaked worker slot");
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.workers.iter().all(|w| !w.busy));

    let responses = run_session(
        &daemon,
        vec![submit(quick_recipe("la")), (0, Request::Shutdown)],
    );
    let id = responses
        .iter()
        .find_map(|r| match r {
            Response::Ack { job } => Some(*job),
            _ => None,
        })
        .expect("the later session is served");
    match terminal_for(&responses, id) {
        Response::Result(r) => assert_eq!(r.stats, reference.stats.to_string()),
        other => panic!("the daemon must keep serving after a reap, got {other:?}"),
    }
}

/// A writer that stalls before every write — a reader that has stopped
/// draining its socket, as seen from the daemon's writer thread.
#[derive(Clone)]
struct StallingBuf {
    inner: SharedBuf,
    stall: Duration,
}

impl Write for StallingBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        std::thread::sleep(self.stall);
        self.inner.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn slow_readers_shed_heartbeats_but_never_acks_or_terminals() {
    // A tiny slice makes the job produce ~40 heartbeats in microseconds
    // while the stalled writer drains one frame per 5 ms through a
    // 2-frame queue: coalescing must shed most heartbeats, yet the ack,
    // the result (byte-identical), the stats frame, and bye all arrive.
    let reference = resolve_recipe(&quick_recipe("la")).unwrap().run();
    let daemon = Arc::new(Daemon::start(ServeConfig {
        workers: 1,
        slice: 50,
        fork: ForkPolicy::always(),
        cache_bytes: None,
        writer_queue: 2,
        ..ServeConfig::default()
    }));
    let (tx, rx) = std::sync::mpsc::channel();
    let out = SharedBuf::default();
    let session = {
        let daemon = Arc::clone(&daemon);
        let out = StallingBuf {
            inner: out.clone(),
            stall: Duration::from_millis(5),
        };
        std::thread::spawn(move || {
            daemon.serve(
                BufReader::new(ChannelReader {
                    rx,
                    buf: Vec::new(),
                    pos: 0,
                }),
                out,
            );
        })
    };
    tx.send(submit(quick_recipe("la")).1).unwrap();
    wait_for(
        &out,
        "the job's result",
        |r| matches!(r, Response::Result(rf) if rf.job == 1),
    );
    tx.send(Request::Stats).unwrap();
    tx.send(Request::Shutdown).unwrap();
    session.join().unwrap();

    let bytes = out.0.lock().unwrap().clone();
    let responses: Vec<Response> = String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(|l| Response::decode(l).unwrap())
        .collect();
    assert!(matches!(responses.first(), Some(Response::Ack { job: 1 })));
    match terminal_for(&responses, 1) {
        Response::Result(r) => {
            assert_eq!(r.stats, reference.stats.to_string(), "terminals never shed");
        }
        other => panic!("the job should complete, got {other:?}"),
    }
    assert!(matches!(responses.last(), Some(Response::Bye)));

    let heartbeats = responses
        .iter()
        .filter(|r| matches!(r, Response::Progress { .. }))
        .count() as u64;
    let stats = responses
        .iter()
        .find_map(|r| match r {
            Response::Stats(s) => Some(s.clone()),
            _ => None,
        })
        .expect("the stats request was answered");
    assert!(
        stats.session_dropped_progress >= 1,
        "the 2-frame queue shed heartbeats: {stats:?}"
    );
    assert!(
        stats.dropped_progress >= stats.session_dropped_progress,
        "the daemon-wide counter covers this session: {stats:?}"
    );
    // Conservation: one heartbeat per 50-cycle slice was produced, and
    // each was either delivered or counted shed — none vanished.
    assert!(
        heartbeats + stats.session_dropped_progress >= reference.cycles / 50 - 1,
        "heartbeats delivered ({heartbeats}) plus shed ({}) cover the {} slices",
        stats.session_dropped_progress,
        reference.cycles / 50
    );
}
