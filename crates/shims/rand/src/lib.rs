//! A minimal, dependency-free stand-in for the [`rand`] crate.
//!
//! This workspace builds in hermetic environments with no access to a
//! crates.io registry, so the handful of `rand` APIs the workload
//! generators use are provided here behind the same names
//! ([`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`]). The generator is a
//! deterministic xoshiro256** seeded through SplitMix64 — the same
//! construction as `pei_engine::SimRng` — so workload inputs stay
//! bit-reproducible for a given seed.
//!
//! **The streams differ from upstream `rand`'s `StdRng` (ChaCha12).**
//! Absolute experiment numbers therefore differ from runs made against
//! the real crate, but every determinism property the repository relies
//! on (same seed ⇒ same input ⇒ same tables, see EXPERIMENTS.md) holds
//! identically.
//!
//! [`rand`]: https://crates.io/crates/rand
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! assert!(a.gen_range(0..10u32) < 10);
//! assert!((0.0..1.0).contains(&a.gen_range(0.0f64..1.0)));
//! ```

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be seeded from a 64-bit value (subset of `rand`'s
/// trait of the same name).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value uniformly samplable from an `Rng` (the role of `rand`'s
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A half-open or inclusive range a value can be drawn from uniformly
/// (the role of `rand`'s `SampleRange`).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, width)` via 128-bit multiply-shift (Lemire).
fn bounded<R: Rng + ?Sized>(rng: &mut R, width: u64) -> u64 {
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + bounded(rng, width) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == 0 && hi as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let width = (hi - lo) as u64 + 1;
                lo + bounded(rng, width) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

/// The generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64-bit value; everything else derives from this.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// with SplitMix64 seeding. Unlike upstream `rand`, the stream is
    /// stable across releases — experiment outputs depend only on seeds.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(r.gen_range(0..10u32) < 10);
            let v = r.gen_range(5..=7usize);
            assert!((5..=7).contains(&v));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = r.gen_range(-10.0f32..10.0);
            assert!((-10.0..10.0).contains(&g));
            let big = r.gen_range(1..u64::MAX);
            assert!(big >= 1);
        }
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut r = StdRng::seed_from_u64(9);
        // Must not overflow width arithmetic.
        let _ = r.gen_range(0..=u64::MAX);
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.1)).count();
        assert!((700..1300).contains(&hits), "hits = {hits}");
        assert!((0..10_000).all(|_| !r.gen_bool(0.0)));
        assert!((0..10_000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn mean_of_unit_f64_near_half() {
        let mut r = StdRng::seed_from_u64(5);
        let sum: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum();
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
