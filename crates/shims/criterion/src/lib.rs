//! A minimal, dependency-free stand-in for the [`criterion`] crate.
//!
//! The workspace builds in hermetic environments without registry
//! access, so the small surface the `components` bench uses is
//! provided here: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Instead of criterion's statistical analysis, each benchmark
//! is warmed up briefly and then timed for a fixed wall-clock window;
//! the mean iteration time is printed to stdout.
//!
//! [`criterion`]: https://crates.io/crates/criterion
//!
//! # Examples
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default();
//! c.bench_function("sum_1k", |b| {
//!     b.iter(|| (0..1000u64).map(black_box).sum::<u64>())
//! });
//! ```

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one benchmark body repeatedly and accumulates timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the measurement window, keeping its result alive
    /// through [`black_box`].
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up: let caches/branch predictors settle, estimate cost.
        let warm_start = Instant::now();
        while warm_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
        }

        let start = Instant::now();
        loop {
            black_box(f());
            self.iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(500) {
                self.elapsed = elapsed;
                break;
            }
        }
    }
}

/// Benchmark registry and runner (subset of criterion's type of the
/// same name).
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Restricts subsequent [`bench_function`](Self::bench_function)
    /// calls to names containing `filter` — the same substring
    /// semantics as `cargo bench -- <filter>`, which
    /// [`criterion_main!`] wires up from the command line.
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    /// Reads a benchmark name filter from the process arguments
    /// (ignoring `--`-style flags, which libtest also receives).
    pub fn default_from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }

    /// Runs one named benchmark and prints its mean iteration time.
    /// Skipped silently when a filter is set and `name` does not
    /// contain it.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.iters > 0 {
            let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
            println!("{name:<45} {per_iter:>12.1} ns/iter ({} iters)", b.iters);
        } else {
            println!("{name:<45} (no iterations run)");
        }
        self
    }
}

/// Declares a benchmark group: a function that runs each listed
/// benchmark function against a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_skips_nonmatching_benchmarks() {
        let mut hits = 0u64;
        Criterion::default()
            .with_filter("queue")
            .bench_function("mem/cache_probe", |b| {
                b.iter(|| {
                    hits += 1;
                    black_box(hits)
                })
            });
        assert_eq!(hits, 0, "filtered-out benchmark must not run");
    }

    #[test]
    fn bench_function_runs_body() {
        let mut hits = 0u64;
        Criterion::default().bench_function("noop", |b| {
            b.iter(|| {
                hits += 1;
                black_box(hits)
            })
        });
        assert!(hits > 0);
    }
}
