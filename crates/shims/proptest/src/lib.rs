//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The workspace builds in hermetic environments without registry
//! access, so the subset of proptest this repository's property tests
//! use is reimplemented here: the [`Strategy`] trait (ranges, tuples,
//! [`Just`], `prop_map`, [`collection::vec`], [`arbitrary::any`]), the
//! [`proptest!`] test macro with `#![proptest_config(..)]`, weighted
//! and unweighted [`prop_oneof!`], and the `prop_assert*`/
//! [`prop_assume!`] macros.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports the generated inputs via
//!   the assertion message but is not minimised.
//! - **Deterministic runs.** Inputs derive from a fixed-seed
//!   xoshiro256** stream, so every `cargo test` run sees the same
//!   cases. The `.proptest-regressions` files checked in alongside the
//!   tests are ignored.
//! - Default case count is 64 per property (the real crate's 256),
//!   overridable with `ProptestConfig::with_cases`.
//!
//! [`proptest`]: https://crates.io/crates/proptest
//!
//! # Examples
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // In test files, also write `#[test]` above the fn — the shim
//!     // passes attributes through rather than adding its own.
//!     #![proptest_config(ProptestConfig::with_cases(32))]
//!     fn add_commutes(a in 0u32..1000, b in any::<u16>()) {
//!         prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
//!     }
//! }
//! # add_commutes();
//! ```

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator feeding the strategies (xoshiro256** with
/// SplitMix64 seeding, the workspace-standard construction).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator with the fixed harness seed; every test run draws
    /// the same case stream.
    pub fn deterministic() -> Self {
        Self::with_seed(0x5eed_cafe_f00d_d00d)
    }

    /// A generator seeded from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, width)` via 128-bit multiply-shift.
    pub fn below(&mut self, width: u64) -> u64 {
        ((self.next_u64() as u128 * width as u128) >> 64) as u64
    }
}

/// Why a test case did not pass: filtered out, or failed an assertion.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it does not count
    /// toward the case budget.
    Reject(String),
    /// A `prop_assert*` failed; the harness panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure carrying `msg`.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// A rejection carrying `msg`.
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// Per-property harness configuration (subset of the real crate's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating test inputs (subset of `proptest::Strategy`,
/// without shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_strategy_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == 0 && hi as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}
impl_strategy_int_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_tuple {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A / a, B / b);
impl_strategy_tuple!(A / a, B / b, C / c);
impl_strategy_tuple!(A / a, B / b, C / c, D / d);

/// Weighted choice over boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union over `arms`, each sampled proportionally to its weight.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed incorrectly")
    }
}

/// Boxes a strategy for use in heterogeneous [`Union`] arms.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// `any::<T>()` support (subset of `proptest::arbitrary`).
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The unconstrained strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length. Only
    /// `usize` ranges convert, which lets untyped literals like
    /// `0..100` infer `usize` (mirroring the real crate's `SizeRange`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.lo + rng.below((self.len.hi - self.len.lo) as u64 + 1) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn independently from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines deterministic property tests: each
/// `#[test] fn name(pat in strategy, ...) { body }` becomes a zero-arg
/// test running the body over generated inputs. Unlike the real crate,
/// the `#[test]` attribute must be written explicitly (it is passed
/// through along with doc comments). An optional leading
/// `#![proptest_config(..)]` sets the case count for every property in
/// the block.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(256).max(1024),
                            "{}: too many prop_assume! rejections ({rejected})",
                            stringify!($name),
                        );
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("{} failed on case {}: {}", stringify!($name), accepted, msg);
                    }
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
/// All arms must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::boxed($strat))),+])
    };
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{} (left: {:?}, right: {:?})",
            format!($($fmt)+), a, b
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{} (both: {:?})", format!($($fmt)+), a);
    }};
}

/// Rejects the current case (without failing) if the condition is
/// false; the harness draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Toy {
        A(u32),
        B,
    }

    proptest! {
        #[test]
        fn ranges_and_any(a in 3u32..9, b in any::<u16>(), c in 0u8..=255) {
            prop_assert!((3..9).contains(&a));
            let _ = (b, c);
        }

        #[test]
        fn tuples_and_vec(pairs in crate::collection::vec((0u64..64, any::<bool>()), 0..20)) {
            prop_assert!(pairs.len() < 20);
            for (v, _) in pairs {
                prop_assert!(v < 64, "v = {}", v);
            }
        }

        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn oneof_weighted(v in prop_oneof![
            3 => (1u32..16).prop_map(Toy::A),
            2 => Just(Toy::B),
        ]) {
            match v {
                Toy::A(x) => prop_assert!((1..16).contains(&x)),
                Toy::B => {}
            }
        }
    }

    #[test]
    fn deterministic_streams_match() {
        let mut a = crate::TestRng::deterministic();
        let mut b = crate::TestRng::deterministic();
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
