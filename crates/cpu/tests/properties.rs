//! Property-based tests of the core model: issue-width and in-flight
//! bounds hold, and instruction counts are conserved, under arbitrary
//! op streams and completion interleavings.

use pei_cpu::core::{Core, CoreConfig, CoreEvent, CoreOut, CoreStatus};
use pei_cpu::trace::Op;
use pei_engine::Outbox;
use pei_types::{Addr, CoreId, OperandValue, PimOpKind};
use proptest::prelude::*;
use std::collections::VecDeque;

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..16).prop_map(Op::Compute),
        (0u64..64).prop_map(|b| Op::load(Addr(b * 64))),
        (0u64..64).prop_map(|b| Op::store(Addr(b * 64))),
        (0u64..64, 0u16..3).prop_map(|(b, dep)| Op::Pei {
            op: PimOpKind::IncU64,
            target: Addr(b * 64),
            input: OperandValue::None,
            dep_dist: dep,
        }),
        Just(Op::Pfence),
        Just(Op::Barrier),
    ]
}

proptest! {
    /// Replaying any op stream with an eager completion oracle terminates,
    /// conserves instruction counts, and never exceeds the configured
    /// in-flight bounds.
    #[test]
    fn core_replay_invariants(ops in proptest::collection::vec(arb_op(), 0..120)) {
        let cfg = CoreConfig {
            issue_width: 4,
            max_mem_inflight: 3,
            max_pei_inflight: 2,
        };
        let expect_instr: u64 = ops.iter().map(|o| o.instructions()).sum();
        let mut core = Core::new(CoreId(0), cfg);
        core.push_ops(ops);

        let mut now = 0u64;
        let mut outs = Outbox::new();
        let mut inflight_mem = VecDeque::new();
        let mut inflight_pei = VecDeque::new();
        let mut fence_pending = false;
        let mut steps = 0;
        loop {
            steps += 1;
            prop_assert!(steps < 100_000, "runaway replay");
            outs.clear();
            let outcome = core.tick(now, &mut outs);
            prop_assert!(outs.len() <= 4 + 1, "more outs than issue width");
            for out in outs.drain() {
                match out {
                    CoreOut::Mem { id, .. } => inflight_mem.push_back(id),
                    CoreOut::Pei { seq, .. } => inflight_pei.push_back(seq),
                    CoreOut::PfenceReq => fence_pending = true,
                }
            }
            prop_assert!(inflight_mem.len() <= cfg.max_mem_inflight);
            prop_assert!(inflight_pei.len() <= cfg.max_pei_inflight);
            match outcome.status {
                CoreStatus::Running => {
                    now = outcome.next.unwrap();
                }
                CoreStatus::Blocked => {
                    // Oracle: complete the oldest outstanding thing.
                    now += 10;
                    if let Some(id) = inflight_mem.pop_front() {
                        core.on_event(CoreEvent::MemDone(id));
                    } else if let Some(seq) = inflight_pei.pop_front() {
                        core.on_event(CoreEvent::PeiDone(seq));
                        core.on_event(CoreEvent::PeiCredit);
                    } else if fence_pending {
                        fence_pending = false;
                        core.on_event(CoreEvent::PfenceDone);
                    } else {
                        prop_assert!(false, "blocked with nothing outstanding");
                    }
                }
                CoreStatus::Drained => break,
            }
        }
        prop_assert_eq!(core.instructions(), expect_instr);
        prop_assert!(core.drained());
    }

    /// Determinism: two cores fed the same stream with the same oracle
    /// produce identical instruction counts and PEI counts.
    #[test]
    fn core_replay_deterministic(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let run = |ops: Vec<Op>| {
            let mut core = Core::new(CoreId(0), CoreConfig::paper());
            core.push_ops(ops);
            let mut now = 0;
            let mut outs = Outbox::new();
            let mut mem = VecDeque::new();
            let mut pei = VecDeque::new();
            let mut fence = false;
            loop {
                outs.clear();
                let o = core.tick(now, &mut outs);
                for out in outs.drain() {
                    match out {
                        CoreOut::Mem { id, .. } => mem.push_back(id),
                        CoreOut::Pei { seq, .. } => pei.push_back(seq),
                        CoreOut::PfenceReq => fence = true,
                    }
                }
                match o.status {
                    CoreStatus::Running => now = o.next.unwrap(),
                    CoreStatus::Blocked => {
                        now += 1;
                        if let Some(id) = mem.pop_front() {
                            core.on_event(CoreEvent::MemDone(id));
                        } else if let Some(seq) = pei.pop_front() {
                            core.on_event(CoreEvent::PeiDone(seq));
                            core.on_event(CoreEvent::PeiCredit);
                        } else if fence {
                            fence = false;
                            core.on_event(CoreEvent::PfenceDone);
                        } else {
                            unreachable!();
                        }
                    }
                    CoreStatus::Drained => break,
                }
            }
            (core.instructions(), core.issued_peis(), now)
        };
        prop_assert_eq!(run(ops.clone()), run(ops));
    }
}
