//! Trace serialization: record a [`PhasedTrace`] to a compact binary
//! stream and replay it later (or elsewhere) with bit-identical results.
//!
//! Workload generation is deterministic given a seed, but recording makes
//! experiments portable across tool versions and lets expensive
//! generations (large graphs) be reused. The format is self-contained and
//! versioned; no external serialization crates are needed.
//!
//! # Format (version 1)
//!
//! ```text
//! magic "PEITRC01" | u32 threads | phases...
//! phase  := u8 0x01 | per thread: u32 op_count | ops...
//! end    := u8 0x00
//! op     := tag u8 | fields (little-endian)
//!   0 Compute(u32)        1 Load{u64 addr, u8 fence}
//!   2 Store{u64 addr}     3 Pei{u8 op, u64 target, u16 dep, operand}
//!   4 Pfence              5 Barrier
//! operand := 0 | 1 u64 | 2 f64 | 3 (u8 len, bytes)
//! ```

use crate::trace::{Op, PhasedTrace};
use pei_types::{Addr, OperandValue, PimOpKind};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"PEITRC01";

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}
fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}
fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("corrupt trace: {what}"))
}

fn write_operand<W: Write>(w: &mut W, v: &OperandValue) -> io::Result<()> {
    match v {
        OperandValue::None => w.write_all(&[0]),
        OperandValue::U64(x) => {
            w.write_all(&[1])?;
            write_u64(w, *x)
        }
        OperandValue::F64(x) => {
            w.write_all(&[2])?;
            write_u64(w, x.to_bits())
        }
        OperandValue::Bytes(b) => {
            w.write_all(&[3, b.len() as u8])?;
            w.write_all(b)
        }
    }
}

fn read_operand<R: Read>(r: &mut R) -> io::Result<OperandValue> {
    Ok(match read_u8(r)? {
        0 => OperandValue::None,
        1 => OperandValue::U64(read_u64(r)?),
        2 => OperandValue::F64(f64::from_bits(read_u64(r)?)),
        3 => {
            let len = read_u8(r)? as usize;
            let mut buf = vec![0u8; len];
            r.read_exact(&mut buf)?;
            OperandValue::from_bytes(&buf)
        }
        t => return Err(corrupt(&format!("operand tag {t}"))),
    })
}

fn write_op<W: Write>(w: &mut W, op: &Op) -> io::Result<()> {
    match op {
        Op::Compute(n) => {
            w.write_all(&[0])?;
            write_u32(w, *n)
        }
        Op::Load { addr, fence_prior } => {
            w.write_all(&[1])?;
            write_u64(w, addr.0)?;
            w.write_all(&[u8::from(*fence_prior)])
        }
        Op::Store { addr } => {
            w.write_all(&[2])?;
            write_u64(w, addr.0)
        }
        Op::Pei {
            op,
            target,
            input,
            dep_dist,
        } => {
            let opcode = PimOpKind::ALL
                .iter()
                .position(|k| k == op)
                .expect("op is in ALL") as u8;
            w.write_all(&[3, opcode])?;
            write_u64(w, target.0)?;
            w.write_all(&dep_dist.to_le_bytes())?;
            write_operand(w, input)
        }
        Op::Pfence => w.write_all(&[4]),
        Op::Barrier => w.write_all(&[5]),
    }
}

fn read_op<R: Read>(r: &mut R) -> io::Result<Op> {
    Ok(match read_u8(r)? {
        0 => Op::Compute(read_u32(r)?),
        1 => Op::Load {
            addr: Addr(read_u64(r)?),
            fence_prior: read_u8(r)? != 0,
        },
        2 => Op::Store {
            addr: Addr(read_u64(r)?),
        },
        3 => {
            let opcode = read_u8(r)? as usize;
            let op = *PimOpKind::ALL
                .get(opcode)
                .ok_or_else(|| corrupt(&format!("opcode {opcode}")))?;
            let target = Addr(read_u64(r)?);
            let dep_dist = read_u16(r)?;
            let input = read_operand(r)?;
            Op::Pei {
                op,
                target,
                input,
                dep_dist,
            }
        }
        4 => Op::Pfence,
        5 => Op::Barrier,
        t => return Err(corrupt(&format!("op tag {t}"))),
    })
}

/// A fully materialized trace, replayable as a [`PhasedTrace`] and
/// serializable to/from a binary stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    threads: usize,
    phases: std::collections::VecDeque<Vec<Vec<Op>>>,
    name: String,
}

impl RecordedTrace {
    /// Drains `source`, materializing every phase.
    pub fn record(source: &mut dyn PhasedTrace) -> Self {
        let mut phases = std::collections::VecDeque::new();
        while let Some(p) = source.next_phase() {
            phases.push_back(p);
        }
        RecordedTrace {
            threads: source.threads(),
            phases,
            name: format!("recorded-{}", source.name()),
        }
    }

    /// Serializes the trace.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn save<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        write_u32(w, self.threads as u32)?;
        for phase in &self.phases {
            w.write_all(&[1])?;
            for ops in phase {
                write_u32(w, ops.len() as u32)?;
                for op in ops {
                    write_op(w, op)?;
                }
            }
        }
        w.write_all(&[0])
    }

    /// Deserializes a trace previously written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on a bad magic/structure, or propagates
    /// I/O errors from `r`.
    pub fn load<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let threads = read_u32(r)? as usize;
        let mut phases = std::collections::VecDeque::new();
        loop {
            match read_u8(r)? {
                0 => break,
                1 => {
                    let mut phase = Vec::with_capacity(threads);
                    for _ in 0..threads {
                        let n = read_u32(r)? as usize;
                        let mut ops = Vec::with_capacity(n);
                        for _ in 0..n {
                            ops.push(read_op(r)?);
                        }
                        phase.push(ops);
                    }
                    phases.push_back(phase);
                }
                t => return Err(corrupt(&format!("phase tag {t}"))),
            }
        }
        Ok(RecordedTrace {
            threads,
            phases,
            name: "recorded".into(),
        })
    }

    /// Number of recorded phases remaining.
    pub fn phases_left(&self) -> usize {
        self.phases.len()
    }

    /// Total operations across all remaining phases.
    pub fn total_ops(&self) -> usize {
        self.phases.iter().flatten().map(Vec::len).sum()
    }
}

impl PhasedTrace for RecordedTrace {
    fn threads(&self) -> usize {
        self.threads
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        self.phases.pop_front()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecPhases;

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Compute(7),
            Op::load(Addr(0x40)),
            Op::Load {
                addr: Addr(0x80),
                fence_prior: true,
            },
            Op::store(Addr(0xc0)),
            Op::Pei {
                op: PimOpKind::MinU64,
                target: Addr(0x100),
                input: OperandValue::U64(99),
                dep_dist: 2,
            },
            Op::Pei {
                op: PimOpKind::EuclideanDist,
                target: Addr(0x140),
                input: OperandValue::from_bytes(&[7u8; 64]),
                dep_dist: 0,
            },
            Op::Pfence,
            Op::Barrier,
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let mut src = VecPhases::new(
            2,
            vec![
                vec![sample_ops(), vec![Op::Compute(1)]],
                vec![vec![Op::Pfence], sample_ops()],
            ],
        );
        let rec = RecordedTrace::record(&mut src);
        let mut buf = Vec::new();
        rec.save(&mut buf).unwrap();
        let loaded = RecordedTrace::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.threads(), 2);
        assert_eq!(loaded.phases_left(), 2);
        assert_eq!(loaded.total_ops(), rec.total_ops());
        // Replay both and compare phase by phase.
        let mut a = rec;
        let mut b = loaded;
        loop {
            match (a.next_phase(), b.next_phase()) {
                (None, None) => break,
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTATRCE\0\0\0\0".to_vec();
        assert!(RecordedTrace::load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut src = VecPhases::single(sample_ops());
        let rec = RecordedTrace::record(&mut src);
        let mut buf = Vec::new();
        rec.save(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(RecordedTrace::load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut src = VecPhases::new(3, vec![]);
        let rec = RecordedTrace::record(&mut src);
        let mut buf = Vec::new();
        rec.save(&mut buf).unwrap();
        let loaded = RecordedTrace::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.threads(), 3);
        assert_eq!(loaded.phases_left(), 0);
    }
}
