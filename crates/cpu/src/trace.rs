//! Trace operations and phased trace sources.

use pei_types::{Addr, OperandValue, PimOpKind};

/// One operation in a thread's trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `n` non-memory instructions, each occupying one issue slot.
    Compute(u32),
    /// A load from `addr`. If `fence_prior` is set, issue waits until all
    /// earlier memory operations of this thread have completed (used for
    /// pointer chasing through freshly produced data).
    Load {
        /// Byte address.
        addr: Addr,
        /// Wait for all prior in-flight memory ops first.
        fence_prior: bool,
    },
    /// A store to `addr`.
    Store {
        /// Byte address.
        addr: Addr,
    },
    /// A PIM-enabled instruction targeting the block of `target`.
    Pei {
        /// Which operation.
        op: PimOpKind,
        /// Target address (single-cache-block restriction applies to its
        /// block).
        target: Addr,
        /// Input operands.
        input: OperandValue,
        /// If nonzero, this PEI consumes the output of the `dep_dist`-th
        /// previous PEI of this thread and cannot issue until it
        /// completes. Software expresses unrolled dependent chains this
        /// way (e.g. hash-table pointer chasing with 4 interleaved
        /// probes → `dep_dist = 4`).
        dep_dist: u16,
    },
    /// PIM memory fence: blocks until all previously issued PEIs
    /// (system-wide) have completed (§3.2).
    Pfence,
    /// End of a parallel phase: wait for all threads, then continue with
    /// the next phase of the workload.
    Barrier,
}

impl Op {
    /// Convenience constructor for an independent load.
    pub fn load(addr: Addr) -> Op {
        Op::Load {
            addr,
            fence_prior: false,
        }
    }

    /// Convenience constructor for a store.
    pub fn store(addr: Addr) -> Op {
        Op::Store { addr }
    }

    /// Convenience constructor for an independent PEI.
    pub fn pei(op: PimOpKind, target: Addr, input: OperandValue) -> Op {
        Op::Pei {
            op,
            target,
            input,
            dep_dist: 0,
        }
    }

    /// How many instructions this op represents (for IPC accounting).
    pub fn instructions(&self) -> u64 {
        match self {
            Op::Compute(n) => *n as u64,
            Op::Load { .. } | Op::Store { .. } | Op::Pei { .. } | Op::Pfence => 1,
            Op::Barrier => 0,
        }
    }

    /// Appends this op to a snapshot encoder. The tag scheme mirrors the
    /// `.petr` recorded-trace format (`trace_io`): 0 = Compute, 1 = Load,
    /// 2 = Store, 3 = Pei, 4 = Pfence, 5 = Barrier.
    pub fn encode(&self, e: &mut pei_types::snap::Encoder) {
        match self {
            Op::Compute(n) => {
                e.u8(0);
                e.u32(*n);
            }
            Op::Load { addr, fence_prior } => {
                e.u8(1);
                e.u64(addr.0);
                e.bool(*fence_prior);
            }
            Op::Store { addr } => {
                e.u8(2);
                e.u64(addr.0);
            }
            Op::Pei {
                op,
                target,
                input,
                dep_dist,
            } => {
                e.u8(3);
                e.u8(op.opcode());
                e.u64(target.0);
                e.u16(*dep_dist);
                input.save(e);
            }
            Op::Pfence => e.u8(4),
            Op::Barrier => e.u8(5),
        }
    }

    /// Inverse of [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Fails on truncation or an unknown tag/opcode/operand.
    pub fn decode(d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<Op> {
        let at = d.offset();
        Ok(match d.u8()? {
            0 => Op::Compute(d.u32()?),
            1 => Op::Load {
                addr: Addr(d.u64()?),
                fence_prior: d.bool()?,
            },
            2 => Op::Store {
                addr: Addr(d.u64()?),
            },
            3 => Op::Pei {
                op: PimOpKind::from_opcode(d.u8()?, d)?,
                target: Addr(d.u64()?),
                dep_dist: d.u16()?,
                input: OperandValue::load(d)?,
            },
            4 => Op::Pfence,
            5 => Op::Barrier,
            t => {
                return Err(pei_types::snap::SnapError::BadTag {
                    offset: at,
                    found: t,
                    what: "trace op",
                })
            }
        })
    }
}

/// A workload expressed as barrier-delimited phases of per-thread op
/// vectors.
///
/// Value-dependent control flow (graph frontiers, convergence loops) is
/// resolved *functionally at generation time*, one phase at a time, so the
/// generator's algorithm state stays consistent with what the simulated
/// threads have "executed" so far.
///
/// `Send` is a supertrait so boxed traces (and the [`pei_system`]
/// `System`s holding them) can move across worker threads in parallel
/// experiment runners.
///
/// [`pei_system`]: ../../pei_system/index.html
pub trait PhasedTrace: Send {
    /// Number of threads this workload spawns.
    fn threads(&self) -> usize;

    /// Generates the next phase: one op vector per thread (implicitly
    /// terminated by a barrier). Returns `None` when the workload is done.
    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>>;

    /// A short human-readable name (for reports).
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// A [`PhasedTrace`] built from pre-materialized phases; used by tests and
/// microbenchmarks.
#[derive(Debug, Clone)]
pub struct VecPhases {
    threads: usize,
    phases: std::collections::VecDeque<Vec<Vec<Op>>>,
    name: String,
}

impl VecPhases {
    /// Wraps explicit phases. Every phase must have one op vector per
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics if any phase has the wrong thread count.
    pub fn new(threads: usize, phases: Vec<Vec<Vec<Op>>>) -> Self {
        for p in &phases {
            assert_eq!(p.len(), threads, "phase thread count mismatch");
        }
        VecPhases {
            threads,
            phases: phases.into(),
            name: "vec-trace".into(),
        }
    }

    /// Single-threaded, single-phase trace.
    pub fn single(ops: Vec<Op>) -> Self {
        Self::new(1, vec![vec![ops]])
    }

    /// Overrides the reported name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl PhasedTrace for VecPhases {
    fn threads(&self) -> usize {
        self.threads
    }

    fn next_phase(&mut self) -> Option<Vec<Vec<Op>>> {
        self.phases.pop_front()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_counts() {
        assert_eq!(Op::Compute(5).instructions(), 5);
        assert_eq!(Op::load(Addr(0)).instructions(), 1);
        assert_eq!(Op::store(Addr(0)).instructions(), 1);
        assert_eq!(Op::Pfence.instructions(), 1);
        assert_eq!(Op::Barrier.instructions(), 0);
        assert_eq!(
            Op::pei(PimOpKind::IncU64, Addr(0), OperandValue::None).instructions(),
            1
        );
    }

    #[test]
    fn vec_phases_drain_in_order() {
        let mut t = VecPhases::new(
            2,
            vec![
                vec![vec![Op::Compute(1)], vec![Op::Compute(2)]],
                vec![vec![], vec![Op::Pfence]],
            ],
        );
        assert_eq!(t.threads(), 2);
        let p1 = t.next_phase().unwrap();
        assert_eq!(p1[1], vec![Op::Compute(2)]);
        let p2 = t.next_phase().unwrap();
        assert_eq!(p2[1], vec![Op::Pfence]);
        assert!(t.next_phase().is_none());
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn mismatched_phase_rejected() {
        VecPhases::new(2, vec![vec![vec![]]]);
    }
}
