//! Virtual-memory support (§4.4): per-core TLBs and the virtual→physical
//! page mapping.
//!
//! PEIs use virtual addresses just like normal instructions; the issuing
//! core translates the (single) target cache block through its own TLB, so
//! the PMU, caches, and memory cubes all operate on physical addresses and
//! no address-translation hardware is needed in memory. The paper's §4.4
//! claim that a PEI costs exactly one TLB access — guaranteed by the
//! single-cache-block restriction — is checked by the test suite.

use pei_types::{Addr, Cycle};

/// Page size: 4 KiB.
pub const PAGE_SHIFT: u32 = 12;

/// TLB parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Fully associative entries (64, a typical L1 DTLB).
    pub entries: usize,
    /// Page-table-walk penalty on a miss, in host cycles.
    pub walk_latency: Cycle,
}

impl TlbConfig {
    /// A typical configuration: 64 entries, 120-cycle walk.
    pub fn typical() -> Self {
        TlbConfig {
            entries: 64,
            walk_latency: 120,
        }
    }
}

/// The virtual→physical page mapping of the simulated process.
///
/// `Identity` maps pages one-to-one (the default; virtual addresses are
/// usable as physical everywhere). `Shuffled` applies a seeded Feistel
/// permutation to the page number, scattering consecutive virtual pages
/// across physical memory the way a long-running OS would — which changes
/// DRAM channel/bank interleaving and L3 set mapping, without breaking
/// any invariant (the permutation is bijective).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageMap {
    /// Physical = virtual.
    Identity,
    /// Seeded bijective scramble of the low 32 bits of the page number.
    Shuffled {
        /// Permutation seed.
        seed: u64,
    },
}

impl PageMap {
    /// Translates a virtual page number to its physical frame number.
    pub fn translate_page(self, vpn: u64) -> u64 {
        match self {
            PageMap::Identity => vpn,
            PageMap::Shuffled { seed } => {
                // 4-round Feistel network over the low 32 bits of the VPN:
                // bijective for any round function. High bits pass through.
                let mut l = (vpn & 0xffff) as u32;
                let mut r = ((vpn >> 16) & 0xffff) as u32;
                for round in 0..4u64 {
                    let k = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(round);
                    let f = (r as u64)
                        .wrapping_mul(0x2545_f491_4f6c_dd1d)
                        .wrapping_add(k);
                    let f = ((f >> 24) & 0xffff) as u32;
                    let nl = r;
                    r = l ^ f;
                    l = nl;
                }
                (vpn & !0xffff_ffff) | ((r as u64) << 16) | l as u64
            }
        }
    }

    /// Translates a full byte address (page offset preserved).
    pub fn translate(self, vaddr: Addr) -> Addr {
        let vpn = vaddr.0 >> PAGE_SHIFT;
        let off = vaddr.0 & ((1 << PAGE_SHIFT) - 1);
        Addr((self.translate_page(vpn) << PAGE_SHIFT) | off)
    }
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    vpn: u64,
    lru: u32,
}

/// A fully associative, LRU translation lookaside buffer.
///
/// # Examples
///
/// ```
/// use pei_cpu::tlb::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig::typical());
/// assert!(!tlb.access(0x1000_0000 >> 12)); // cold miss (fills)
/// assert!(tlb.access(0x1000_0000 >> 12)); // hit
/// ```
#[derive(Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    entries: Vec<TlbEntry>,
    clock: u32,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        Tlb {
            cfg,
            entries: Vec::with_capacity(cfg.entries),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `vpn`, returning `true` on a hit. A miss fills the entry
    /// (evicting the LRU one if full), so the retry after the walk hits.
    pub fn access(&mut self, vpn: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.entries.iter_mut().find(|e| e.vpn == vpn) {
            e.lru = clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() < self.cfg.entries {
            self.entries.push(TlbEntry { vpn, lru: clock });
        } else {
            let victim = self
                .entries
                .iter_mut()
                .min_by_key(|e| e.lru)
                .expect("nonempty");
            *victim = TlbEntry { vpn, lru: clock };
        }
        false
    }

    /// Page-walk penalty in host cycles.
    pub fn walk_latency(&self) -> Cycle {
        self.cfg.walk_latency
    }

    /// `(hits, misses)` so far. Their sum is the total translation count —
    /// the §4.4 "one TLB access per PEI" check uses it.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

impl pei_types::snap::SnapshotState for Tlb {
    /// Entry order matters (lookup scans linearly; LRU ties break by
    /// position), so entries travel in stored order.
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        e.seq(self.entries.len());
        for entry in &self.entries {
            e.u64(entry.vpn);
            e.u32(entry.lru);
        }
        e.u32(self.clock);
        e.u64(self.hits);
        e.u64(self.misses);
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        let n = d.seq(12)?;
        if n > self.cfg.entries {
            return Err(d.bad(format!(
                "TLB holds {n} entries but is configured for {}",
                self.cfg.entries
            )));
        }
        self.entries.clear();
        for _ in 0..n {
            self.entries.push(TlbEntry {
                vpn: d.u64()?,
                lru: d.u32()?,
            });
        }
        self.clock = d.u32()?;
        self.hits = d.u64()?;
        self.misses = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill_and_lru_eviction() {
        let mut t = Tlb::new(TlbConfig {
            entries: 2,
            walk_latency: 100,
        });
        assert!(!t.access(1));
        assert!(!t.access(2));
        assert!(t.access(1)); // 2 is now LRU
        assert!(!t.access(3)); // evicts 2
        assert!(t.access(1));
        assert!(!t.access(2), "2 was evicted");
        assert_eq!(t.stats(), (2, 4));
    }

    #[test]
    fn identity_map_is_identity() {
        for a in [0u64, 0x1000, 0xdead_beef, u64::MAX >> 1] {
            assert_eq!(PageMap::Identity.translate(Addr(a)), Addr(a));
        }
    }

    #[test]
    fn shuffled_map_is_bijective_on_a_window() {
        let map = PageMap::Shuffled { seed: 42 };
        let mut seen = std::collections::HashSet::new();
        for vpn in 0..100_000u64 {
            assert!(
                seen.insert(map.translate_page(vpn)),
                "collision at vpn {vpn}"
            );
        }
    }

    #[test]
    fn shuffled_map_preserves_page_offsets() {
        let map = PageMap::Shuffled { seed: 7 };
        let v = Addr(0x1234_5678);
        let p = map.translate(v);
        assert_eq!(p.0 & 0xfff, v.0 & 0xfff);
        assert_ne!(p, v, "seed 7 should move this page");
    }

    #[test]
    fn shuffled_maps_differ_by_seed() {
        let a = PageMap::Shuffled { seed: 1 };
        let b = PageMap::Shuffled { seed: 2 };
        let moved = (0..1000u64)
            .filter(|&vpn| a.translate_page(vpn) != b.translate_page(vpn))
            .count();
        assert!(moved > 900);
    }
}
