//! The trace-replaying out-of-order core model.
//!
//! The model captures what matters for the paper's experiments — issue
//! width, memory-level parallelism bounded by MSHRs, PEI-level parallelism
//! bounded by the host PCU's operand buffer, dependent-operation
//! serialization, and pfence draining — without simulating register renaming
//! or speculation (the workloads are data-parallel loops whose performance
//! is memory-bound).

use crate::tlb::{PageMap, Tlb, PAGE_SHIFT};
use crate::trace::Op;
use pei_engine::{CounterId, Counters, Outbox};
use pei_types::mem::ns;
use pei_types::{Addr, CoreId, Cycle, OperandValue, PimOpKind, ReqId};
use std::collections::{HashSet, VecDeque};

/// Core microarchitectural parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions issued per cycle (Table 2: 4).
    pub issue_width: u32,
    /// Maximum in-flight loads/stores (L1 MSHRs, Table 2: 16).
    pub max_mem_inflight: usize,
    /// Maximum in-flight PEIs (host PCU operand-buffer entries, §6.1: 4).
    pub max_pei_inflight: usize,
}

impl CoreConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        CoreConfig {
            issue_width: 4,
            max_mem_inflight: 16,
            max_pei_inflight: 4,
        }
    }
}

/// Messages a core emits while issuing.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreOut {
    /// A load or store to the private cache.
    Mem {
        /// Namespaced request id.
        id: ReqId,
        /// Byte address.
        addr: Addr,
        /// Whether this is a store.
        write: bool,
    },
    /// A PEI handed to the host-side PCU.
    Pei {
        /// Per-core PEI sequence number (used for dependence tracking).
        seq: u64,
        /// Operation kind.
        op: PimOpKind,
        /// Target address.
        target: Addr,
        /// Input operands.
        input: OperandValue,
    },
    /// A pfence request to the PMU (issued once the core's own PEIs have
    /// drained, which orders it after their registration at the PMU).
    PfenceReq,
}

/// Completions delivered back to a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreEvent {
    /// A load/store finished.
    MemDone(ReqId),
    /// A PEI finished (by sequence number): its outputs are available and
    /// dependence/drain tracking clears.
    PeiDone(u64),
    /// A host-PCU operand-buffer entry was freed. For host-executed PEIs
    /// this coincides with completion; for memory-dispatched PEIs it
    /// arrives as soon as the operands are handed to the PMU (Fig. 5
    /// step 4), which is what lets in-flight PEIs scale to the
    /// memory-side buffer pool (§6.1: 576 total operand buffers).
    PeiCredit,
    /// The pfence this core issued has completed.
    PfenceDone,
}

/// What a call to [`Core::tick`] concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStatus {
    /// Issued work and can issue again; re-tick at `next`.
    Running,
    /// Stalled waiting for a completion event; no tick scheduled.
    Blocked,
    /// The current phase's ops are fully issued *and* completed (the core
    /// is at the barrier / end of trace).
    Drained,
}

/// Result of one [`Core::tick`]. Emitted messages land in the caller's
/// outbox; the outcome only carries scheduling information.
#[derive(Debug)]
pub struct TickOutcome {
    /// Next cycle to tick this core, if it can make progress on its own.
    pub next: Option<Cycle>,
    /// Progress classification.
    pub status: CoreStatus,
}

/// One simulated host core.
#[derive(Debug)]
pub struct Core {
    id: CoreId,
    cfg: CoreConfig,
    ops: VecDeque<Op>,
    mem_outstanding: HashSet<ReqId>,
    next_mem_local: u64,
    pei_next_seq: u64,
    pei_outstanding: HashSet<u64>,
    pei_credits_in_use: usize,
    fence_wait: bool,
    parked: bool,
    tlb: Option<Tlb>,
    page_map: PageMap,
    counters: Counters,
    c: CoreCounters,
}

/// The core's counter bank.
#[derive(Debug)]
struct CoreCounters {
    instructions: CounterId,
    tlb_walks: CounterId,
    issued_peis: CounterId,
    stall_mem: CounterId,
    stall_pei_buffer: CounterId,
    stall_pei_dep: CounterId,
    stall_fence: CounterId,
}

impl CoreCounters {
    fn register(c: &mut Counters) -> Self {
        CoreCounters {
            instructions: c.register("instructions"),
            tlb_walks: c.register("tlb_walks"),
            issued_peis: c.register("peis"),
            stall_mem: c.register("stall.mem"),
            stall_pei_buffer: c.register("stall.pei_buffer"),
            stall_pei_dep: c.register("stall.pei_dep"),
            stall_fence: c.register("stall.fence"),
        }
    }
}

impl Core {
    /// Creates an idle core.
    pub fn new(id: CoreId, cfg: CoreConfig) -> Self {
        let mut counters = Counters::new();
        let c = CoreCounters::register(&mut counters);
        Core {
            id,
            cfg,
            ops: VecDeque::new(),
            mem_outstanding: HashSet::new(),
            next_mem_local: 0,
            pei_next_seq: 0,
            pei_outstanding: HashSet::new(),
            pei_credits_in_use: 0,
            fence_wait: false,
            parked: false,
            tlb: None,
            page_map: PageMap::Identity,
            counters,
            c,
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Enables virtual memory (§4.4): addresses in the trace are treated
    /// as virtual, translated through `map` with a TLB of `tlb_cfg`
    /// charging its walk latency on misses. Without this, the core uses
    /// an ideal identity translation.
    pub fn enable_virtual_memory(&mut self, tlb_cfg: crate::tlb::TlbConfig, map: PageMap) {
        self.tlb = Some(Tlb::new(tlb_cfg));
        self.page_map = map;
    }

    /// `(tlb hits, tlb misses)`; hits equal the number of memory
    /// operations and PEIs issued (each costs exactly one successful
    /// translation — the §4.4 property).
    pub fn tlb_stats(&self) -> (u64, u64) {
        self.tlb.as_ref().map(|t| t.stats()).unwrap_or((0, 0))
    }

    /// On a TLB miss for `addr`'s page, returns the walk penalty (the
    /// entry is filled, so the retry hits).
    fn tlb_walk(&mut self, addr: Addr) -> Option<Cycle> {
        let tlb = self.tlb.as_mut()?;
        if tlb.access(addr.0 >> PAGE_SHIFT) {
            None
        } else {
            self.counters.inc(self.c.tlb_walks);
            Some(tlb.walk_latency())
        }
    }

    /// Appends the next phase's operations.
    pub fn push_ops(&mut self, ops: Vec<Op>) {
        self.ops.extend(ops);
    }

    /// Whether all issued work has completed and no ops remain.
    pub fn drained(&self) -> bool {
        self.ops.is_empty()
            && self.mem_outstanding.is_empty()
            && self.pei_outstanding.is_empty()
            && self.pei_credits_in_use == 0
            && !self.fence_wait
    }

    /// Total instructions issued (for IPC).
    pub fn instructions(&self) -> u64 {
        self.counters.get(self.c.instructions)
    }

    /// Total PEIs issued.
    pub fn issued_peis(&self) -> u64 {
        self.counters.get(self.c.issued_peis)
    }

    /// Delivers a completion. Returns `true` if the core was parked and
    /// should be re-ticked.
    pub fn on_event(&mut self, ev: CoreEvent) -> bool {
        match ev {
            CoreEvent::MemDone(id) => {
                self.mem_outstanding.remove(&id);
            }
            CoreEvent::PeiDone(seq) => {
                self.pei_outstanding.remove(&seq);
            }
            CoreEvent::PeiCredit => {
                debug_assert!(self.pei_credits_in_use > 0);
                self.pei_credits_in_use = self.pei_credits_in_use.saturating_sub(1);
            }
            CoreEvent::PfenceDone => {
                self.fence_wait = false;
            }
        }
        std::mem::take(&mut self.parked)
    }

    /// Issues up to one cycle's worth of instructions at `now`, pushing
    /// emitted messages into `out` (the caller's reusable outbox).
    pub fn tick(&mut self, now: Cycle, out: &mut Outbox<CoreOut>) -> TickOutcome {
        let mut slots = self.cfg.issue_width;
        let mut blocked = false;

        while slots > 0 && !blocked {
            if self.fence_wait {
                self.counters.inc(self.c.stall_fence);
                blocked = true;
                break;
            }
            let Some(op) = self.ops.pop_front() else {
                break;
            };
            match op {
                Op::Compute(n) => {
                    let take = n.min(slots);
                    slots -= take;
                    self.counters.add(self.c.instructions, take as u64);
                    let remaining = n - take;
                    if remaining > 0 {
                        if take == self.cfg.issue_width {
                            // Pure-compute stretch: fast-forward whole
                            // cycles instead of ticking one by one.
                            self.counters.add(self.c.instructions, remaining as u64);
                            let cycles = remaining.div_ceil(self.cfg.issue_width) as u64;
                            return TickOutcome {
                                next: Some(now + 1 + cycles),
                                status: CoreStatus::Running,
                            };
                        }
                        self.ops.push_front(Op::Compute(remaining));
                    }
                }
                Op::Load { addr, fence_prior } => {
                    let fenced = fence_prior && !self.mem_outstanding.is_empty();
                    if fenced || self.mem_outstanding.len() >= self.cfg.max_mem_inflight {
                        self.counters.inc(self.c.stall_mem);
                        self.ops.push_front(Op::Load { addr, fence_prior });
                        blocked = true;
                    } else if let Some(walk) = self.tlb_walk(addr) {
                        self.ops.push_front(Op::Load { addr, fence_prior });
                        return TickOutcome {
                            next: Some(now + walk),
                            status: CoreStatus::Running,
                        };
                    } else {
                        self.next_mem_local += 1;
                        let id = ReqId::tagged(ns::CORE, self.id.0, self.next_mem_local);
                        self.mem_outstanding.insert(id);
                        out.push(CoreOut::Mem {
                            id,
                            addr: self.page_map.translate(addr),
                            write: false,
                        });
                        slots -= 1;
                        self.counters.inc(self.c.instructions);
                    }
                }
                Op::Store { addr } => {
                    if self.mem_outstanding.len() >= self.cfg.max_mem_inflight {
                        self.counters.inc(self.c.stall_mem);
                        self.ops.push_front(Op::Store { addr });
                        blocked = true;
                    } else if let Some(walk) = self.tlb_walk(addr) {
                        self.ops.push_front(Op::Store { addr });
                        return TickOutcome {
                            next: Some(now + walk),
                            status: CoreStatus::Running,
                        };
                    } else {
                        self.next_mem_local += 1;
                        let id = ReqId::tagged(ns::CORE, self.id.0, self.next_mem_local);
                        self.mem_outstanding.insert(id);
                        out.push(CoreOut::Mem {
                            id,
                            addr: self.page_map.translate(addr),
                            write: true,
                        });
                        slots -= 1;
                        self.counters.inc(self.c.instructions);
                    }
                }
                Op::Pei {
                    op: kind,
                    target,
                    input,
                    dep_dist,
                } => {
                    let dep_unmet = dep_dist > 0
                        && self
                            .pei_next_seq
                            .checked_sub(dep_dist as u64)
                            .is_some_and(|dep| self.pei_outstanding.contains(&dep));
                    if dep_unmet || self.pei_credits_in_use >= self.cfg.max_pei_inflight {
                        if dep_unmet {
                            self.counters.inc(self.c.stall_pei_dep);
                        } else {
                            self.counters.inc(self.c.stall_pei_buffer);
                        }
                        self.ops.push_front(Op::Pei {
                            op: kind,
                            target,
                            input,
                            dep_dist,
                        });
                        blocked = true;
                    } else if let Some(walk) = self.tlb_walk(target) {
                        // §4.4: one TLB access per PEI, at the host core.
                        self.ops.push_front(Op::Pei {
                            op: kind,
                            target,
                            input,
                            dep_dist,
                        });
                        return TickOutcome {
                            next: Some(now + walk),
                            status: CoreStatus::Running,
                        };
                    } else {
                        let seq = self.pei_next_seq;
                        self.pei_next_seq += 1;
                        self.pei_outstanding.insert(seq);
                        self.pei_credits_in_use += 1;
                        out.push(CoreOut::Pei {
                            seq,
                            op: kind,
                            target: self.page_map.translate(target),
                            input,
                        });
                        slots -= 1;
                        self.counters.inc(self.c.instructions);
                        self.counters.inc(self.c.issued_peis);
                    }
                }
                Op::Pfence => {
                    if self.pei_outstanding.is_empty() {
                        out.push(CoreOut::PfenceReq);
                        self.fence_wait = true;
                        self.counters.inc(self.c.instructions);
                    } else {
                        self.counters.inc(self.c.stall_fence);
                        self.ops.push_front(Op::Pfence);
                    }
                    blocked = true;
                }
                Op::Barrier => {
                    if self.mem_outstanding.is_empty() && self.pei_outstanding.is_empty() {
                        // Local drain point satisfied: keep issuing.
                    } else {
                        self.ops.push_front(Op::Barrier);
                        blocked = true;
                    }
                }
            }
        }

        let status = if self.drained() {
            CoreStatus::Drained
        } else if blocked || self.ops.is_empty() {
            self.parked = true;
            CoreStatus::Blocked
        } else {
            CoreStatus::Running
        };
        TickOutcome {
            next: match status {
                CoreStatus::Running => Some(now + 1),
                _ => None,
            },
            status,
        }
    }

    /// Labels the current counter values as the end of phase `label`
    /// (see `Counters::snapshot`).
    pub fn snapshot_phase(&mut self, label: &'static str) {
        self.counters.snapshot(label);
    }

    /// Restore-time sanity handle: whether virtual memory is enabled.
    pub fn has_tlb(&self) -> bool {
        self.tlb.is_some()
    }

    /// Dumps statistics under `prefix`.
    pub fn report(&self, prefix: &str, stats: &mut pei_engine::StatsReport) {
        // `tlb_walks` duplicates `tlb.misses` below; keep the key set as-is.
        self.counters
            .flush_if(prefix, stats, |name| name != "tlb_walks");
        let (h, m) = self.tlb_stats();
        stats.bump(format!("{prefix}tlb.hits"), h as f64);
        stats.bump(format!("{prefix}tlb.misses"), m as f64);
    }
}

impl pei_types::snap::SnapshotState for Core {
    /// `id`, `cfg`, and `page_map` are construction parameters; the TLB
    /// section is present exactly when virtual memory is enabled, and
    /// the outstanding-id sets travel sorted so identical machine states
    /// serialize to identical bytes.
    fn save(&self, e: &mut pei_types::snap::Encoder) {
        e.seq(self.ops.len());
        for op in &self.ops {
            op.encode(e);
        }
        let mut mem: Vec<u64> = self.mem_outstanding.iter().map(|id| id.0).collect();
        mem.sort_unstable();
        e.seq(mem.len());
        for id in mem {
            e.u64(id);
        }
        e.u64(self.next_mem_local);
        e.u64(self.pei_next_seq);
        let mut peis: Vec<u64> = self.pei_outstanding.iter().copied().collect();
        peis.sort_unstable();
        e.seq(peis.len());
        for s in peis {
            e.u64(s);
        }
        e.usize(self.pei_credits_in_use);
        e.bool(self.fence_wait);
        e.bool(self.parked);
        match &self.tlb {
            Some(tlb) => {
                e.bool(true);
                tlb.save(e);
            }
            None => e.bool(false),
        }
        self.counters.save(e);
    }

    fn load(&mut self, d: &mut pei_types::snap::Decoder<'_>) -> pei_types::snap::SnapResult<()> {
        let ops = d.seq(1)?;
        self.ops.clear();
        for _ in 0..ops {
            self.ops.push_back(Op::decode(d)?);
        }
        let mem = d.seq(8)?;
        self.mem_outstanding.clear();
        for _ in 0..mem {
            self.mem_outstanding.insert(ReqId(d.u64()?));
        }
        self.next_mem_local = d.u64()?;
        self.pei_next_seq = d.u64()?;
        let peis = d.seq(8)?;
        self.pei_outstanding.clear();
        for _ in 0..peis {
            self.pei_outstanding.insert(d.u64()?);
        }
        self.pei_credits_in_use = d.usize()?;
        self.fence_wait = d.bool()?;
        self.parked = d.bool()?;
        let has_tlb = d.bool()?;
        match (&mut self.tlb, has_tlb) {
            (Some(tlb), true) => tlb.load(d)?,
            (None, false) => {}
            (mine, theirs) => {
                return Err(pei_types::snap::SnapError::Mismatch {
                    what: format!(
                        "core {}: snapshot {} a TLB but this machine {}",
                        self.id.0,
                        if theirs { "carries" } else { "lacks" },
                        if mine.is_some() {
                            "has one"
                        } else {
                            "has none"
                        },
                    ),
                })
            }
        }
        self.counters.load(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Core {
        Core::new(CoreId(0), CoreConfig::paper())
    }

    /// Test adapter: tick with a fresh outbox, returning outcome + outs.
    struct TickRes {
        outs: Outbox<CoreOut>,
        next: Option<Cycle>,
        status: CoreStatus,
    }

    fn tick(c: &mut Core, now: Cycle) -> TickRes {
        let mut outs = Outbox::new();
        let o = c.tick(now, &mut outs);
        TickRes {
            outs,
            next: o.next,
            status: o.status,
        }
    }

    fn pei_op(dep_dist: u16) -> Op {
        Op::Pei {
            op: PimOpKind::IncU64,
            target: Addr(0x40),
            input: OperandValue::None,
            dep_dist,
        }
    }

    #[test]
    fn issues_up_to_width_per_tick() {
        let mut c = core();
        c.push_ops(vec![
            Op::load(Addr(0x40)),
            Op::load(Addr(0x80)),
            Op::load(Addr(0xc0)),
            Op::load(Addr(0x100)),
            Op::load(Addr(0x140)),
        ]);
        let o = tick(&mut c, 0);
        assert_eq!(o.outs.len(), 4, "4-wide issue");
        assert_eq!(o.status, CoreStatus::Running);
        let o2 = tick(&mut c, 1);
        assert_eq!(o2.outs.len(), 1);
    }

    #[test]
    fn compute_fast_forward_preserves_instruction_count() {
        let mut c = core();
        c.push_ops(vec![Op::Compute(100), Op::load(Addr(0x40))]);
        let o = tick(&mut c, 0);
        assert_eq!(o.status, CoreStatus::Running);
        // 100 instructions at width 4 = 25 cycles.
        assert_eq!(o.next, Some(1 + 24));
        assert_eq!(c.instructions(), 100);
        let o2 = tick(&mut c, o.next.unwrap());
        assert_eq!(o2.outs.len(), 1);
        assert_eq!(c.instructions(), 101);
    }

    #[test]
    fn mem_inflight_bounded_by_mshrs() {
        let mut c = Core::new(
            CoreId(0),
            CoreConfig {
                issue_width: 8,
                max_mem_inflight: 2,
                max_pei_inflight: 4,
            },
        );
        c.push_ops((0..5).map(|i| Op::load(Addr(i * 64))).collect());
        let o = tick(&mut c, 0);
        assert_eq!(o.outs.len(), 2);
        assert_eq!(o.status, CoreStatus::Blocked);
        // Completion unblocks one more.
        let id = match &o.outs[0] {
            CoreOut::Mem { id, .. } => *id,
            _ => unreachable!(),
        };
        assert!(c.on_event(CoreEvent::MemDone(id)));
        let o2 = tick(&mut c, 10);
        assert_eq!(o2.outs.len(), 1);
    }

    #[test]
    fn pei_inflight_bounded_by_operand_buffer() {
        let mut c = core();
        c.push_ops((0..6).map(|_| pei_op(0)).collect());
        let o = tick(&mut c, 0);
        // Issue width 4 and buffer 4: exactly 4 PEIs leave.
        assert_eq!(o.outs.len(), 4);
        let o2 = tick(&mut c, 1);
        assert!(o2.outs.is_empty(), "buffer full blocks further PEIs");
        let woke = c.on_event(CoreEvent::PeiDone(0)) | c.on_event(CoreEvent::PeiCredit);
        assert!(woke, "at least one completion event wakes the core");
        let o3 = tick(&mut c, 2);
        assert_eq!(o3.outs.len(), 1);
    }

    #[test]
    fn dependent_pei_waits_for_producer() {
        let mut c = core();
        c.push_ops(vec![pei_op(0), pei_op(1)]);
        let o = tick(&mut c, 0);
        assert_eq!(o.outs.len(), 1, "dependent PEI must not issue");
        assert_eq!(o.status, CoreStatus::Blocked);
        c.on_event(CoreEvent::PeiDone(0));
        let o2 = tick(&mut c, 5);
        assert_eq!(o2.outs.len(), 1);
    }

    #[test]
    fn interleaved_chains_overlap() {
        // Four chains unrolled with dep_dist = 4 keep 4 PEIs in flight.
        let mut c = core();
        let mut ops = Vec::new();
        for _hop in 0..2 {
            for _chain in 0..4 {
                ops.push(pei_op(if _hop == 0 { 0 } else { 4 }));
            }
        }
        c.push_ops(ops);
        let o = tick(&mut c, 0);
        assert_eq!(o.outs.len(), 4, "first hops of all 4 chains in flight");
        // Completing chain 0's first hop admits its second hop.
        c.on_event(CoreEvent::PeiDone(0));
        c.on_event(CoreEvent::PeiCredit);
        let o2 = tick(&mut c, 1);
        assert_eq!(o2.outs.len(), 1);
    }

    #[test]
    fn pfence_waits_for_own_peis_then_blocks_on_pmu() {
        let mut c = core();
        c.push_ops(vec![pei_op(0), Op::Pfence, Op::Compute(1)]);
        let o = tick(&mut c, 0);
        assert_eq!(o.outs.len(), 1);
        assert_eq!(o.status, CoreStatus::Blocked, "fence waits for own PEI");
        c.on_event(CoreEvent::PeiDone(0));
        c.on_event(CoreEvent::PeiCredit);
        let o2 = tick(&mut c, 10);
        assert!(o2.outs.contains(&CoreOut::PfenceReq));
        assert_eq!(o2.status, CoreStatus::Blocked);
        // Nothing issues until PfenceDone.
        let o3 = tick(&mut c, 11);
        assert!(o3.outs.is_empty());
        c.on_event(CoreEvent::PfenceDone);
        let o4 = tick(&mut c, 12);
        assert_eq!(o4.status, CoreStatus::Drained); // trace exhausted
        assert_eq!(c.instructions(), 3);
    }

    #[test]
    fn drained_reported_after_completions() {
        let mut c = core();
        c.push_ops(vec![Op::load(Addr(0x40))]);
        let o = tick(&mut c, 0);
        let id = match &o.outs[0] {
            CoreOut::Mem { id, .. } => *id,
            _ => unreachable!(),
        };
        assert_ne!(o.status, CoreStatus::Drained);
        c.on_event(CoreEvent::MemDone(id));
        let o2 = tick(&mut c, 1);
        assert_eq!(o2.status, CoreStatus::Drained);
    }

    #[test]
    fn fence_prior_load_waits_for_all_memory() {
        let mut c = core();
        c.push_ops(vec![
            Op::load(Addr(0x40)),
            Op::Load {
                addr: Addr(0x80),
                fence_prior: true,
            },
        ]);
        let o = tick(&mut c, 0);
        assert_eq!(o.outs.len(), 1);
        let id = match &o.outs[0] {
            CoreOut::Mem { id, .. } => *id,
            _ => unreachable!(),
        };
        c.on_event(CoreEvent::MemDone(id));
        let o2 = tick(&mut c, 1);
        assert_eq!(o2.outs.len(), 1);
    }

    #[test]
    fn barrier_consumed_only_when_drained() {
        let mut c = core();
        c.push_ops(vec![Op::load(Addr(0x40)), Op::Barrier, Op::Compute(4)]);
        let o = tick(&mut c, 0);
        assert_eq!(o.status, CoreStatus::Blocked);
        let id = match &o.outs[0] {
            CoreOut::Mem { id, .. } => *id,
            _ => unreachable!(),
        };
        c.on_event(CoreEvent::MemDone(id));
        let o2 = tick(&mut c, 5);
        // Barrier consumed; compute continues in the same phase.
        assert!(o2.status == CoreStatus::Running || c.instructions() >= 1);
    }
}
