//! Host core model: trace-driven out-of-order issue windows.
//!
//! The paper drives its timing simulator from Pin; this crate provides the
//! equivalent front-end for a functional-first simulator. Workloads
//! generate per-thread [`trace::Op`] streams (organized in barrier-delimited
//! phases) and each [`core::Core`] replays its stream through a model of a
//! 4-issue out-of-order core: independent memory operations and PEIs
//! overlap up to the MSHR / operand-buffer limits, dependent operations
//! (pointer chases, PEI output consumers) serialize, and `pfence`s block
//! until the PMU drains outstanding writer PEIs.
//!
//! # Examples
//!
//! ```
//! use pei_cpu::trace::Op;
//! use pei_cpu::core::{Core, CoreConfig, CoreEvent};
//! use pei_engine::Outbox;
//! use pei_types::{Addr, CoreId};
//!
//! let mut core = Core::new(CoreId(0), CoreConfig::paper());
//! core.push_ops(vec![Op::Compute(8), Op::load(Addr(0x40))]);
//! let mut outs = Outbox::new();
//! let outcome = core.tick(0, &mut outs);
//! assert!(!outs.is_empty() || outcome.next.is_some());
//! ```
//!
//! This crate's place in the workspace is mapped in DESIGN.md §5.

pub mod core;
pub mod tlb;
pub mod trace;
pub mod trace_io;

pub use crate::core::{Core, CoreConfig, CoreEvent, CoreOut, TickOutcome};
pub use tlb::{PageMap, Tlb, TlbConfig};
pub use trace::{Op, PhasedTrace, VecPhases};
pub use trace_io::RecordedTrace;
