//! The PIM operation set of Table 1 — the architectural vocabulary of
//! PIM-enabled instructions.
//!
//! This module defines *what* the operations are (opcode, reader/writer
//! class, operand sizes); their execution semantics (`apply`) live in
//! `pei-core`, which has access to the functional backing store.

use crate::{Addr, BlockAddr, OperandValue, ReqId};

/// The seven PIM operations of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PimOpKind {
    /// 8-byte integer increment (ATF). Reader + writer; 0 B in / 0 B out.
    IncU64,
    /// 8-byte integer min (BFS, SP, WCC). Reader + writer; 8 B in / 0 B out.
    MinU64,
    /// Double-precision floating-point add (PR). Reader + writer;
    /// 8 B in / 0 B out.
    AddF64,
    /// Hash-table bucket probe (HJ). Reader only; 8 B key in / 9 B out
    /// (1 B match flag + 8 B next-bucket pointer).
    HashProbe,
    /// Histogram bin index of sixteen 4-byte words (HG, RP). Reader only;
    /// 1 B shift amount in / 16 B bin indexes out.
    HistBin,
    /// Euclidean distance between a 16-dimensional f32 vector in memory
    /// and one passed as operand (SC). Reader only; 64 B in / 4 B out.
    EuclideanDist,
    /// Dot product of two 4-dimensional f64 vectors (SVM). Reader only;
    /// 32 B in / 8 B out.
    DotProduct,
}

impl PimOpKind {
    /// All operations, in Table 1 order.
    pub const ALL: [PimOpKind; 7] = [
        PimOpKind::IncU64,
        PimOpKind::MinU64,
        PimOpKind::AddF64,
        PimOpKind::HashProbe,
        PimOpKind::HistBin,
        PimOpKind::EuclideanDist,
        PimOpKind::DotProduct,
    ];

    /// Whether the operation modifies its target cache block (the 'W'
    /// column of Table 1). Writer PEIs take the PIM directory's writer
    /// lock and require back-invalidation when offloaded.
    pub fn is_writer(self) -> bool {
        matches!(
            self,
            PimOpKind::IncU64 | PimOpKind::MinU64 | PimOpKind::AddF64
        )
    }

    /// Input operand size in bytes (Table 1).
    pub fn input_bytes(self) -> usize {
        match self {
            PimOpKind::IncU64 => 0,
            PimOpKind::MinU64 | PimOpKind::AddF64 | PimOpKind::HashProbe => 8,
            PimOpKind::HistBin => 1,
            PimOpKind::EuclideanDist => 64,
            PimOpKind::DotProduct => 32,
        }
    }

    /// Output operand size in bytes (Table 1).
    pub fn output_bytes(self) -> usize {
        match self {
            PimOpKind::IncU64 | PimOpKind::MinU64 | PimOpKind::AddF64 => 0,
            PimOpKind::HashProbe => 9,
            PimOpKind::HistBin => 16,
            PimOpKind::EuclideanDist => 4,
            PimOpKind::DotProduct => 8,
        }
    }

    /// Short mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            PimOpKind::IncU64 => "pim.inc8",
            PimOpKind::MinU64 => "pim.min8",
            PimOpKind::AddF64 => "pim.fadd",
            PimOpKind::HashProbe => "pim.hprobe",
            PimOpKind::HistBin => "pim.histbin",
            PimOpKind::EuclideanDist => "pim.eudist",
            PimOpKind::DotProduct => "pim.dot",
        }
    }
}

impl std::fmt::Display for PimOpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A PIM operation command as it travels from the PMU to a memory-side
/// PCU (the packetized form of §4.5, step 5).
#[derive(Debug, Clone, PartialEq)]
pub struct PimCmd {
    /// Transaction id (assigned by the PMU).
    pub id: ReqId,
    /// Target byte address. The single-cache-block restriction applies to
    /// its block; the in-block offset selects the word the operation acts
    /// on (as in the HMC 2.0 in-memory atomics).
    pub target: Addr,
    /// Which operation to perform.
    pub op: PimOpKind,
    /// Input operands.
    pub input: OperandValue,
}

impl PimOpKind {
    /// Table-1 position, used as the opcode in serialized forms.
    pub fn opcode(self) -> u8 {
        Self::ALL
            .iter()
            .position(|k| *k == self)
            .expect("op in ALL") as u8
    }

    /// Inverse of [`opcode`](Self::opcode).
    ///
    /// # Errors
    ///
    /// Fails on an opcode outside Table 1.
    pub fn from_opcode(
        code: u8,
        d: &crate::snap::Decoder<'_>,
    ) -> crate::snap::SnapResult<PimOpKind> {
        Self::ALL
            .get(code as usize)
            .copied()
            .ok_or_else(|| d.bad(format!("PIM opcode {code}")))
    }
}

impl PimCmd {
    /// The cache block this command is restricted to.
    pub fn block(&self) -> BlockAddr {
        self.target.block()
    }

    /// Appends the command to a snapshot stream.
    pub fn save(&self, e: &mut crate::snap::Encoder) {
        e.u64(self.id.0);
        e.u64(self.target.0);
        e.u8(self.op.opcode());
        self.input.save(e);
    }

    /// Decodes a command written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Fails on truncation or a bad opcode/operand.
    pub fn load(d: &mut crate::snap::Decoder<'_>) -> crate::snap::SnapResult<PimCmd> {
        let id = ReqId(d.u64()?);
        let target = Addr(d.u64()?);
        let code = d.u8()?;
        let op = PimOpKind::from_opcode(code, d)?;
        let input = OperandValue::load(d)?;
        Ok(PimCmd {
            id,
            target,
            op,
            input,
        })
    }
}

/// Completion of a [`PimCmd`], carrying output operands back to the host.
#[derive(Debug, Clone, PartialEq)]
pub struct PimOut {
    /// Echo of the command id.
    pub id: ReqId,
    /// The block operated on.
    pub block: BlockAddr,
    /// Output operands (possibly [`OperandValue::None`]).
    pub output: OperandValue,
}

impl PimOut {
    /// Appends the completion to a snapshot stream.
    pub fn save(&self, e: &mut crate::snap::Encoder) {
        e.u64(self.id.0);
        e.u64(self.block.0);
        self.output.save(e);
    }

    /// Decodes a completion written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Fails on truncation or a bad operand.
    pub fn load(d: &mut crate::snap::Decoder<'_>) -> crate::snap::SnapResult<PimOut> {
        Ok(PimOut {
            id: ReqId(d.u64()?),
            block: BlockAddr(d.u64()?),
            output: OperandValue::load(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reader_writer_flags() {
        use PimOpKind::*;
        assert!(IncU64.is_writer());
        assert!(MinU64.is_writer());
        assert!(AddF64.is_writer());
        assert!(!HashProbe.is_writer());
        assert!(!HistBin.is_writer());
        assert!(!EuclideanDist.is_writer());
        assert!(!DotProduct.is_writer());
    }

    #[test]
    fn table1_operand_sizes() {
        use PimOpKind::*;
        assert_eq!((IncU64.input_bytes(), IncU64.output_bytes()), (0, 0));
        assert_eq!((MinU64.input_bytes(), MinU64.output_bytes()), (8, 0));
        assert_eq!((AddF64.input_bytes(), AddF64.output_bytes()), (8, 0));
        assert_eq!((HashProbe.input_bytes(), HashProbe.output_bytes()), (8, 9));
        assert_eq!((HistBin.input_bytes(), HistBin.output_bytes()), (1, 16));
        assert_eq!(
            (EuclideanDist.input_bytes(), EuclideanDist.output_bytes()),
            (64, 4)
        );
        assert_eq!(
            (DotProduct.input_bytes(), DotProduct.output_bytes()),
            (32, 8)
        );
    }

    #[test]
    fn operands_fit_single_cache_block() {
        // §3.1: the operand-size restriction.
        for op in PimOpKind::ALL {
            assert!(op.input_bytes() <= crate::BLOCK_BYTES);
            assert!(op.output_bytes() <= crate::BLOCK_BYTES);
        }
    }

    #[test]
    fn mnemonics_unique() {
        let mut names: Vec<_> = PimOpKind::ALL.iter().map(|o| o.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PimOpKind::ALL.len());
    }
}
