//! Input/output operand values carried by PIM-enabled instructions.
//!
//! Table 1 of the paper bounds operands to at most one cache block (64 B);
//! the common cases are tiny (0 or 8 bytes), so the representation is an
//! enum that avoids heap allocation for everything except the two
//! vector-operand operations (Euclidean distance and, for outputs,
//! histogram bin indexes).

use crate::BLOCK_BYTES;

/// A PEI input or output operand.
///
/// # Examples
///
/// ```
/// use pei_types::OperandValue;
///
/// assert_eq!(OperandValue::None.byte_len(), 0);
/// assert_eq!(OperandValue::U64(3).byte_len(), 8);
/// assert_eq!(OperandValue::F64(1.5).as_f64(), Some(1.5));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum OperandValue {
    /// No operand (e.g. the input of the 8-byte increment operation).
    #[default]
    None,
    /// An 8-byte integer operand (min operand, hash key, ...).
    U64(u64),
    /// An 8-byte floating-point operand (PageRank delta).
    F64(f64),
    /// An arbitrary byte-string operand up to one cache block (vector
    /// operands for Euclidean distance / dot product, histogram outputs).
    Bytes(Box<[u8]>),
}

impl OperandValue {
    /// Creates a byte-string operand.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than one cache block, which the paper's
    /// operand-size restriction (§3.1) forbids.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() <= BLOCK_BYTES,
            "operand exceeds single-cache-block restriction ({} > {})",
            bytes.len(),
            BLOCK_BYTES
        );
        OperandValue::Bytes(bytes.into())
    }

    /// Size of the operand in bytes as it would travel over the off-chip
    /// link; used for flit accounting.
    pub fn byte_len(&self) -> usize {
        match self {
            OperandValue::None => 0,
            OperandValue::U64(_) | OperandValue::F64(_) => 8,
            OperandValue::Bytes(b) => b.len(),
        }
    }

    /// The operand as an integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            OperandValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The operand as a float, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            OperandValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The operand as raw bytes, if it is a byte string.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            OperandValue::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl OperandValue {
    /// Appends the operand to a snapshot stream (tagged, same tag set as
    /// the recorded-trace format).
    pub fn save(&self, e: &mut crate::snap::Encoder) {
        match self {
            OperandValue::None => e.tag(0),
            OperandValue::U64(v) => {
                e.tag(1);
                e.u64(*v);
            }
            OperandValue::F64(v) => {
                e.tag(2);
                e.f64(*v);
            }
            OperandValue::Bytes(b) => {
                e.tag(3);
                e.bytes(b);
            }
        }
    }

    /// Decodes an operand written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Fails on a bad tag, an over-long byte operand, or truncation.
    pub fn load(d: &mut crate::snap::Decoder<'_>) -> crate::snap::SnapResult<Self> {
        let offset = d.offset();
        Ok(match d.u8()? {
            0 => OperandValue::None,
            1 => OperandValue::U64(d.u64()?),
            2 => OperandValue::F64(d.f64()?),
            3 => {
                let b = d.bytes()?;
                if b.len() > BLOCK_BYTES {
                    return Err(crate::snap::SnapError::BadValue {
                        offset,
                        what: format!("operand of {} bytes exceeds one block", b.len()),
                    });
                }
                OperandValue::Bytes(b.into())
            }
            t => {
                return Err(crate::snap::SnapError::BadTag {
                    offset,
                    found: t,
                    what: "operand value",
                })
            }
        })
    }
}

impl From<u64> for OperandValue {
    fn from(v: u64) -> Self {
        OperandValue::U64(v)
    }
}

impl From<f64> for OperandValue {
    fn from(v: f64) -> Self {
        OperandValue::F64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_lengths_match_table1() {
        // Table 1: increment 0 B, min 8 B, fp add 8 B, probe 8 B in,
        // histogram 1 B in / 16 B out, distance 64 B in / 4 B out,
        // dot product 32 B in / 8 B out.
        assert_eq!(OperandValue::None.byte_len(), 0);
        assert_eq!(OperandValue::U64(1).byte_len(), 8);
        assert_eq!(OperandValue::F64(0.5).byte_len(), 8);
        assert_eq!(OperandValue::from_bytes(&[0u8; 16]).byte_len(), 16);
        assert_eq!(OperandValue::from_bytes(&[0u8; 64]).byte_len(), 64);
    }

    #[test]
    #[should_panic(expected = "single-cache-block")]
    fn oversized_operand_rejected() {
        let _ = OperandValue::from_bytes(&[0u8; 65]);
    }

    #[test]
    fn accessors_are_exclusive() {
        let v = OperandValue::U64(9);
        assert_eq!(v.as_u64(), Some(9));
        assert_eq!(v.as_f64(), None);
        assert_eq!(v.as_bytes(), None);
        let b = OperandValue::from_bytes(&[1, 2, 3]);
        assert_eq!(b.as_bytes(), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(OperandValue::from(7u64), OperandValue::U64(7));
        assert_eq!(OperandValue::from(2.0f64), OperandValue::F64(2.0));
        assert_eq!(OperandValue::default(), OperandValue::None);
    }
}
