//! Machine-snapshot codec: a dependency-free little-endian binary
//! format in the style of the `.petr` trace format (versioned magic,
//! validated decode, offset-reporting errors).
//!
//! Every stateful component of the simulator implements
//! [`SnapshotState`]: `save` appends the component's complete dynamic
//! state to an [`Encoder`], and `load` restores it *in place* on an
//! identically-constructed component, validating every field as it
//! decodes. Configuration (sizes, latencies, geometries) is **not**
//! serialized — a snapshot is only meaningful against a machine built
//! from an equivalent configuration, which `pei-system` enforces with a
//! config fingerprint in the snapshot header.
//!
//! The format rules, shared by every implementation:
//!
//! - All integers are little-endian and fixed-width; `f64` travels as
//!   its IEEE-754 bit pattern ([`Encoder::f64`]), so round trips are
//!   bit-exact.
//! - Sequences are a `u32` count followed by the items. Keyed
//!   collections (`HashMap`/`HashSet`) are serialized in sorted key
//!   order so equal states produce equal bytes.
//! - Each component section starts with a one-byte tag
//!   ([`Encoder::tag`] / [`Decoder::expect_tag`]) so a misaligned or
//!   corrupt stream fails fast with the offset and the section name,
//!   never a panic or a silently wrong machine.
//!
//! See DESIGN.md §11 for the full layout of a `System` snapshot.

/// Errors produced while decoding snapshot bytes.
///
/// Every variant that results from malformed input carries the byte
/// offset at which decoding failed, mirroring `pei-trace`'s
/// `TraceError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before the value being decoded.
    Truncated {
        /// Offset at which more bytes were needed.
        offset: usize,
    },
    /// The stream does not start with the snapshot magic.
    BadMagic,
    /// The format version is not one this build can read.
    BadVersion {
        /// The version found in the header.
        found: u16,
    },
    /// A section or value tag did not match what the decoder expected.
    BadTag {
        /// Offset of the tag byte.
        offset: usize,
        /// The tag found.
        found: u8,
        /// What the decoder was trying to read.
        what: &'static str,
    },
    /// A decoded value is invalid in context (bad enum discriminant,
    /// non-UTF-8 string, out-of-range index).
    BadValue {
        /// Offset at which the value started.
        offset: usize,
        /// Description of the problem.
        what: String,
    },
    /// The snapshot is well-formed but does not fit the target machine
    /// (wrong component count, wrong geometry, wrong config
    /// fingerprint).
    Mismatch {
        /// Description of the disagreement.
        what: String,
    },
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated { offset } => {
                write!(f, "snapshot truncated at byte {offset}")
            }
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::BadVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapError::BadTag {
                offset,
                found,
                what,
            } => write!(
                f,
                "bad tag {found:#x} at byte {offset} while reading {what}"
            ),
            SnapError::BadValue { offset, what } => {
                write!(f, "bad value at byte {offset}: {what}")
            }
            SnapError::Mismatch { what } => {
                write!(f, "snapshot does not fit this machine: {what}")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Convenience alias for decode results.
pub type SnapResult<T> = Result<T, SnapError>;

/// Append-only little-endian byte sink for snapshot encoding.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a raw byte slice with no length prefix (magic, payloads
    /// whose length is known from context).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a one-byte section/value tag.
    pub fn tag(&mut self, t: u8) {
        self.buf.push(t);
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its bit pattern (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a sequence length (`u32`).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` — no simulated collection comes
    /// within orders of magnitude of that.
    pub fn seq(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("snapshot sequence too long"));
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.seq(b.len());
        self.raw(b);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Writes an `Option` discriminant; the caller writes the payload
    /// after a `true`.
    pub fn opt(&mut self, present: bool) {
        self.bool(present);
    }
}

/// Validating cursor over snapshot bytes.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps `bytes` for decoding.
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, pos: 0 }
    }

    /// Current byte offset (for error context).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left to decode.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> SnapResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnapError::Truncated { offset: self.pos });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> SnapResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`, rejecting bytes other than 0/1.
    pub fn bool(&mut self) -> SnapResult<bool> {
        let offset = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::BadValue {
                offset,
                what: format!("bool byte {b}"),
            }),
        }
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> SnapResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> SnapResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> SnapResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u128`.
    pub fn u128(&mut self) -> SnapResult<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a `usize` (stored as `u64`), rejecting values that cannot
    /// index on this platform.
    pub fn usize(&mut self) -> SnapResult<usize> {
        let offset = self.pos;
        usize::try_from(self.u64()?).map_err(|_| SnapError::BadValue {
            offset,
            what: "usize overflow".into(),
        })
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> SnapResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a sequence length, bounding it by the bytes remaining
    /// (each element needs at least `min_item_bytes`), so corrupt
    /// lengths fail with `Truncated` instead of attempting a huge
    /// allocation.
    pub fn seq(&mut self, min_item_bytes: usize) -> SnapResult<usize> {
        let offset = self.pos;
        let n = self.u32()? as usize;
        if n.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(SnapError::Truncated { offset });
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> SnapResult<&'a [u8]> {
        let n = self.seq(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> SnapResult<String> {
        let offset = self.pos;
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::BadValue {
            offset,
            what: "non-UTF-8 string".into(),
        })
    }

    /// Reads an `Option` discriminant.
    pub fn opt(&mut self) -> SnapResult<bool> {
        self.bool()
    }

    /// Reads a one-byte tag and checks it, reporting `what` on
    /// mismatch.
    pub fn expect_tag(&mut self, want: u8, what: &'static str) -> SnapResult<()> {
        let offset = self.pos;
        let found = self.u8()?;
        if found == want {
            Ok(())
        } else {
            Err(SnapError::BadTag {
                offset,
                found,
                what,
            })
        }
    }

    /// Builds a [`SnapError::BadValue`] at the current offset.
    pub fn bad(&self, what: impl Into<String>) -> SnapError {
        SnapError::BadValue {
            offset: self.pos,
            what: what.into(),
        }
    }

    /// Fails unless every byte has been consumed.
    pub fn finish(&self) -> SnapResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::BadValue {
                offset: self.pos,
                what: format!("{} trailing bytes", self.remaining()),
            })
        }
    }
}

/// Uniform save/load over the snapshot codec.
///
/// `load` mutates `self` in place and must leave an
/// identically-constructed component in exactly the saved state; on
/// error the component may be partially written and the caller must
/// discard it (System::restore restores into a scratch machine it
/// throws away on failure — components never observe a torn state).
pub trait SnapshotState {
    /// Appends this component's complete dynamic state.
    fn save(&self, e: &mut Encoder);

    /// Restores state previously written by [`save`](Self::save) into
    /// an identically-constructed component.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the bytes are truncated, corrupt,
    /// or describe a component of different geometry.
    fn load(&mut self, d: &mut Decoder<'_>) -> SnapResult<()>;
}

/// Saves a `Cycle`/`u64` pair sequence helper used by event queues.
///
/// (Free functions rather than trait impls keep the orphan rule simple
/// for collection-shaped state.)
pub fn check_len(what: &str, found: usize, expected: usize) -> SnapResult<()> {
    if found == expected {
        Ok(())
    } else {
        Err(SnapError::Mismatch {
            what: format!("{what}: snapshot has {found}, machine has {expected}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.bool(true);
        e.u16(0xbeef);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 3);
        e.u128(u128::MAX - 9);
        e.f64(-0.0);
        e.str("héllo");
        e.opt(false);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u16().unwrap(), 0xbeef);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.u128().unwrap(), u128::MAX - 9);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.str().unwrap(), "héllo");
        assert!(!d.opt().unwrap());
        d.finish().unwrap();
    }

    #[test]
    fn truncation_reports_offset() {
        let mut e = Encoder::new();
        e.u32(5);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..2]);
        assert_eq!(d.u32(), Err(SnapError::Truncated { offset: 0 }));
    }

    #[test]
    fn bad_bool_is_a_value_error() {
        let bytes = [9u8];
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.bool(),
            Err(SnapError::BadValue { offset: 0, .. })
        ));
    }

    #[test]
    fn seq_bounds_corrupt_lengths() {
        // A claimed length of 2^31 items with 4 bytes of payload must be
        // Truncated, not an allocation attempt.
        let mut e = Encoder::new();
        e.u32(1 << 31);
        e.u32(0);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.seq(8), Err(SnapError::Truncated { offset: 0 }));
    }

    #[test]
    fn tags_catch_misalignment() {
        let mut e = Encoder::new();
        e.tag(3);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let err = d.expect_tag(4, "cores section").unwrap_err();
        assert!(matches!(err, SnapError::BadTag { found: 3, .. }));
        assert!(err.to_string().contains("cores section"));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let bytes = [0u8; 3];
        let d = Decoder::new(&bytes);
        assert!(matches!(d.finish(), Err(SnapError::BadValue { .. })));
    }

    #[test]
    fn check_len_mismatch_names_the_component() {
        let err = check_len("vaults", 8, 16).unwrap_err();
        assert!(err.to_string().contains("vaults"));
    }
}
