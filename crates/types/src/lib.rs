//! Shared architectural vocabulary for the PEI simulator.
//!
//! This crate defines the primitive types every other crate in the workspace
//! speaks: physical addresses and cache-block addresses, component
//! identifiers, memory-request descriptors, HMC packet kinds and their flit
//! costs, and the small operand values carried by PIM-enabled instructions.
//!
//! Keeping these in a leaf crate lets the cache hierarchy (`pei-mem`),
//! the HMC model (`pei-hmc`), the core model (`pei-cpu`) and the PEI
//! architecture (`pei-core`) stay decoupled from each other while still
//! agreeing on the transaction vocabulary, exactly the way the packetized
//! HMC interface of the paper decouples host and memory.
//!
//! # Examples
//!
//! ```
//! use pei_types::{Addr, BlockAddr, BLOCK_BYTES};
//!
//! let a = Addr(0x1234);
//! let b = a.block();
//! assert_eq!(b.base().0, 0x1200);
//! assert_eq!(BLOCK_BYTES, 64);
//! assert!(b.contains(a));
//! ```
//!
//! This crate's place in the workspace is mapped in DESIGN.md §5.

pub mod ids;
pub mod json;
pub mod mem;
pub mod operand;
pub mod packet;
pub mod pim;
pub mod snap;
pub mod wire;

pub use ids::{BankId, CoreId, CubeId, L3BankId, VaultId};
pub use mem::{AccessKind, MemReq, ReqId};
pub use operand::OperandValue;
pub use packet::{FlitCount, PacketKind, FLIT_BYTES};
pub use pim::{PimCmd, PimOpKind, PimOut};
pub use snap::{Decoder, Encoder, SnapError, SnapResult, SnapshotState};

/// Size of one last-level cache block in bytes.
///
/// The paper's *single-cache-block restriction* (§3.1) bounds every PIM
/// operation to exactly one such block, which is why this constant shows up
/// in every layer of the stack.
pub const BLOCK_BYTES: usize = 64;

/// log2 of [`BLOCK_BYTES`].
pub const BLOCK_SHIFT: u32 = 6;

/// A cycle count in the host clock domain (4 GHz in the paper configuration).
///
/// All event timestamps in the simulator are expressed in host cycles; the
/// 2 GHz memory-side domain schedules events at even host-cycle boundaries.
pub type Cycle = u64;

/// A byte-granular physical address in the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns the cache-block address containing this byte address.
    ///
    /// ```
    /// use pei_types::Addr;
    /// assert_eq!(Addr(127).block().0, 1);
    /// ```
    #[inline]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }

    /// Byte offset of this address within its cache block.
    #[inline]
    pub fn block_offset(self) -> usize {
        (self.0 & (BLOCK_BYTES as u64 - 1)) as usize
    }

    /// Returns the address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A cache-block-granular address (byte address shifted right by
/// [`BLOCK_SHIFT`]).
///
/// The single-cache-block restriction makes this the unit of PIM-operation
/// targeting, coherence management, and locality monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// First byte address of the block.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << BLOCK_SHIFT)
    }

    /// Whether the byte address `a` falls inside this block.
    #[inline]
    pub fn contains(self, a: Addr) -> bool {
        a.block() == self
    }

    /// Folds the block address down to `bits` bits by XOR-ing successive
    /// `bits`-wide slices together.
    ///
    /// This is the "XOR-folded address" used by both the PIM directory index
    /// and the locality monitor's partial tags (§4.3). Folding keeps rare
    /// false positives (two blocks mapping to one entry) while never
    /// producing false negatives for equal blocks.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 63.
    #[inline]
    pub fn xor_fold(self, bits: u32) -> u64 {
        assert!(bits > 0 && bits < 64, "fold width must be in 1..=63");
        let mask = (1u64 << bits) - 1;
        let mut v = self.0;
        let mut acc = 0u64;
        while v != 0 {
            acc ^= v & mask;
            v >>= bits;
        }
        acc
    }
}

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_math_round_trips() {
        let a = Addr(0xdead_beef);
        let b = a.block();
        assert!(b.contains(a));
        assert_eq!(b.base().0 % BLOCK_BYTES as u64, 0);
        assert!(b.base().0 <= a.0);
        assert!(a.0 < b.base().0 + BLOCK_BYTES as u64);
    }

    #[test]
    fn block_offset_within_range() {
        for raw in [0u64, 1, 63, 64, 65, 4095, 0xffff_ffff] {
            let off = Addr(raw).block_offset();
            assert!(off < BLOCK_BYTES);
            assert_eq!(off as u64, raw % BLOCK_BYTES as u64);
        }
    }

    #[test]
    fn xor_fold_stays_in_range_and_is_deterministic() {
        for bits in [1u32, 8, 10, 11, 16, 33] {
            for raw in [0u64, 1, 0xffff_ffff_ffff, u64::MAX >> BLOCK_SHIFT] {
                let f1 = BlockAddr(raw).xor_fold(bits);
                let f2 = BlockAddr(raw).xor_fold(bits);
                assert_eq!(f1, f2);
                assert!(f1 < (1u64 << bits));
            }
        }
    }

    #[test]
    fn xor_fold_of_small_value_is_identity() {
        assert_eq!(BlockAddr(0x3ff).xor_fold(10), 0x3ff);
        assert_eq!(BlockAddr(0x7).xor_fold(10), 0x7);
    }

    #[test]
    #[should_panic(expected = "fold width")]
    fn xor_fold_rejects_zero_width() {
        BlockAddr(1).xor_fold(0);
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(BlockAddr(2).to_string(), "blk:0x2");
    }

    #[test]
    fn addr_offset_advances() {
        assert_eq!(Addr(10).offset(54).block(), BlockAddr(1));
    }
}
