//! Hand-rolled JSON codec for the `pei-serve` wire protocol: a small
//! value model, an escaping encoder, and a validating decoder with
//! offset-reporting errors in the style of the `.petr` and snapshot
//! codecs in this crate (see [`crate::snap`]).
//!
//! The subset is exactly what the newline-delimited frame protocol
//! needs (DESIGN.md §12): objects, arrays, strings with full escape
//! handling, numbers, booleans, and null. Integers that fit `u64`/`i64`
//! round-trip exactly ([`Json::U64`]/[`Json::I64`]), which matters for
//! 64-bit seeds and cycle counts that a lossy `f64` representation
//! would corrupt.
//!
//! # Examples
//!
//! ```
//! use pei_types::json::Json;
//!
//! let v = Json::parse(r#"{"type":"ack","job":7}"#).unwrap();
//! assert_eq!(v.get("type").and_then(Json::as_str), Some("ack"));
//! assert_eq!(v.get("job").and_then(Json::as_u64), Some(7));
//! assert_eq!(v.encode(), r#"{"type":"ack","job":7}"#);
//! ```

use std::fmt::Write as _;

/// Maximum nesting depth the decoder accepts. Frames are nearly flat;
/// the bound turns a hostile deeply-nested input into an error instead
/// of a stack overflow.
const MAX_DEPTH: usize = 64;

/// A JSON value.
///
/// Object members keep their source order (encoding is deterministic
/// and diff-friendly); lookups scan, which is fine at frame sizes.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64` (exact round trip).
    U64(u64),
    /// A negative integer that fits `i64` (exact round trip).
    I64(i64),
    /// Any other number (fractional or out of integer range).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source / insertion order.
    Obj(Vec<(String, Json)>),
}

/// A decode failure: the byte offset at which it was detected and what
/// the decoder was doing, mirroring `SnapError`'s offset discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which decoding failed.
    pub offset: usize,
    /// Description of the problem.
    pub what: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad JSON at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses exactly one JSON value spanning the whole input
    /// (surrounding whitespace allowed, trailing garbage rejected).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after value"));
        }
        Ok(v)
    }

    /// Serializes this value as compact JSON (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends this value's compact JSON to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                // JSON has no NaN/Inf; encode them as null like every
                // pragmatic serializer.
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Member lookup on an object; `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer (including
    /// an integral `f64` that fits without loss).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            Json::I64(n) => u64::try_from(n).ok(),
            Json::F64(x) if x >= 0.0 && x.fract() == 0.0 && x < 2f64.powi(53) => Some(x as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(n) => Some(n as f64),
            Json::I64(n) => Some(n as f64),
            Json::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}

/// Appends `s` as a quoted JSON string, escaping quotes, backslashes,
/// and control characters.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            what: what.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    members.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(self.err("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte {b:#04x}"))),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.pos += 1;
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if !saw_digit {
            self.pos = start;
            return Err(self.err("malformed number"));
        }
        // The token is valid UTF-8 by construction (ASCII subset).
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(n) = token.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = token.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        match token.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::F64(x)),
            _ => {
                self.pos = start;
                Err(self.err(format!("malformed number `{token}`")))
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"').map_err(|_| self.err("expected string"))?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("lone low surrogate"))?
                            };
                            out.push(c);
                        }
                        other => {
                            self.pos -= 1;
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)));
                        }
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar: the input is a &str, so
                    // the bytes are valid UTF-8 by construction.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in [
            "null", "true", "false", "0", "42", "-7", r#""hi""#, "1.5", "[]", "{}",
        ] {
            let v = Json::parse(src).unwrap();
            assert_eq!(v.encode(), src, "round-tripping {src}");
        }
    }

    #[test]
    fn u64_is_exact() {
        let big = u64::MAX - 1;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        assert_eq!(v.encode(), big.to_string());
        let neg = Json::parse("-9007199254740993").unwrap();
        assert_eq!(neg, Json::I64(-9007199254740993));
    }

    #[test]
    fn escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{08}\u{0c}\r\u{1}é𝄞";
        let encoded = Json::Str(s.into()).encode();
        assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(s));
        // Surrogate-pair decoding.
        let v = Json::parse(r#""𝄞""#).unwrap();
        assert_eq!(v.as_str(), Some("𝄞"));
    }

    #[test]
    fn objects_preserve_order_and_lookup() {
        let v = Json::parse(r#"{"b":1,"a":[2,{"c":null}]}"#).unwrap();
        assert_eq!(v.encode(), r#"{"b":1,"a":[2,{"c":null}]}"#);
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[_]>::len), Some(2));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn errors_report_offsets() {
        let err = Json::parse(r#"{"a":}"#).unwrap_err();
        assert_eq!(err.offset, 5);
        let err = Json::parse(r#"{"a":1} x"#).unwrap_err();
        assert_eq!(err.offset, 8);
        assert!(err.to_string().contains("byte 8"));
        let err = Json::parse("\"ab").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
        let err = Json::parse(r#""\ud834""#).unwrap_err();
        assert!(err.to_string().contains("surrogate"));
    }

    #[test]
    fn depth_is_bounded() {
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.to_string().contains("deep"));
    }

    #[test]
    fn nan_encodes_as_null() {
        assert_eq!(Json::F64(f64::NAN).encode(), "null");
    }
}
