//! HMC off-chip packet kinds and their flit costs.
//!
//! The paper's footnote 7 pins the link accounting we reproduce: with 16-byte
//! flits, "a memory read consumes 16/80 bytes of request/response bandwidth
//! and a memory write consumes 80 bytes of request bandwidth". PIM packets
//! carry a 16-byte header plus their input (request direction) or output
//! (response direction) operands.

use crate::BLOCK_BYTES;

/// Size of one off-chip link flit in bytes.
pub const FLIT_BYTES: usize = 16;

/// Number of flits a payload of `header + payload_bytes` occupies.
///
/// ```
/// use pei_types::packet::flits_for;
/// assert_eq!(flits_for(0), 1);   // bare header
/// assert_eq!(flits_for(8), 2);   // header flit + one data flit
/// assert_eq!(flits_for(64), 5);  // header + 64 B data
/// ```
#[inline]
pub fn flits_for(payload_bytes: usize) -> u64 {
    1 + payload_bytes.div_ceil(FLIT_BYTES) as u64
}

/// A count of flits, the unit of off-chip bandwidth accounting.
pub type FlitCount = u64;

/// The kinds of packets that traverse the host<->HMC serial links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Read request for one cache block (header only).
    ReadReq,
    /// Read response carrying one cache block.
    ReadResp,
    /// Write request carrying one cache block.
    WriteReq,
    /// Write acknowledgement (header only).
    WriteResp,
    /// PIM operation request carrying `input_bytes` of operands.
    PimReq {
        /// Input operand payload size in bytes.
        input_bytes: u16,
    },
    /// PIM operation response carrying `output_bytes` of operands.
    PimResp {
        /// Output operand payload size in bytes.
        output_bytes: u16,
    },
}

impl PacketKind {
    /// Number of request- or response-channel flits this packet occupies.
    pub fn flits(self) -> FlitCount {
        match self {
            PacketKind::ReadReq | PacketKind::WriteResp => flits_for(0),
            PacketKind::ReadResp | PacketKind::WriteReq => flits_for(BLOCK_BYTES),
            PacketKind::PimReq { input_bytes } => flits_for(input_bytes as usize),
            PacketKind::PimResp { output_bytes } => flits_for(output_bytes as usize),
        }
    }

    /// Total bytes on the wire (flits × flit size).
    pub fn wire_bytes(self) -> u64 {
        self.flits() * FLIT_BYTES as u64
    }

    /// Whether this packet travels on the request channel (host → memory).
    pub fn is_request(self) -> bool {
        matches!(
            self,
            PacketKind::ReadReq | PacketKind::WriteReq | PacketKind::PimReq { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footnote7_byte_accounting() {
        // "a memory read consumes 16/80 bytes of request/response bandwidth"
        assert_eq!(PacketKind::ReadReq.wire_bytes(), 16);
        assert_eq!(PacketKind::ReadResp.wire_bytes(), 80);
        // "a memory write consumes 80 bytes of request bandwidth"
        assert_eq!(PacketKind::WriteReq.wire_bytes(), 80);
        assert_eq!(PacketKind::WriteResp.wire_bytes(), 16);
    }

    #[test]
    fn pim_packets_scale_with_operands() {
        // §2.2: memory-side addition sends only the 8-byte delta: one header
        // flit + one data flit = 32 wire bytes, vs 128 B for the host-side
        // read+writeback of the whole block.
        assert_eq!(PacketKind::PimReq { input_bytes: 8 }.wire_bytes(), 32);
        assert_eq!(PacketKind::PimResp { output_bytes: 0 }.wire_bytes(), 16);
        // SC: 64 B input vector.
        assert_eq!(PacketKind::PimReq { input_bytes: 64 }.wire_bytes(), 80);
        assert_eq!(PacketKind::PimResp { output_bytes: 4 }.wire_bytes(), 32);
    }

    #[test]
    fn request_response_classification() {
        assert!(PacketKind::ReadReq.is_request());
        assert!(PacketKind::WriteReq.is_request());
        assert!(PacketKind::PimReq { input_bytes: 0 }.is_request());
        assert!(!PacketKind::ReadResp.is_request());
        assert!(!PacketKind::WriteResp.is_request());
        assert!(!PacketKind::PimResp { output_bytes: 0 }.is_request());
    }

    #[test]
    fn flit_rounding() {
        assert_eq!(flits_for(1), 2);
        assert_eq!(flits_for(16), 2);
        assert_eq!(flits_for(17), 3);
    }
}
