//! Request/response frames of the `pei-serve` wire protocol.
//!
//! The protocol is newline-delimited JSON: each line holds exactly one
//! frame, an object whose `type` member selects the variant (DESIGN.md
//! §12 is the normative grammar). This module owns the *shared types* —
//! clients ([`Request`] encode, [`Response`] decode) and the daemon (the
//! reverse) agree by construction because both directions live here,
//! built on the dependency-free codec in [`crate::json`].
//!
//! Recipes travel as *strings* (workload labels, policy names) rather
//! than simulator enums: this crate sits at the bottom of the workspace
//! and cannot name `Workload` or `DispatchPolicy`, and the daemon wants
//! to validate vocabulary itself so an unknown workload becomes a
//! structured `error` frame, not a decode failure.
//!
//! # Examples
//!
//! ```
//! use pei_types::wire::{Recipe, Request, Response};
//!
//! let req = Request::Submit {
//!     recipe: Recipe::new("atf", "small", "la"),
//!     trace: None,
//!     tenant: None,
//!     priority: Default::default(),
//!     deadline_ms: None,
//! };
//! let line = req.encode();
//! assert_eq!(Request::decode(&line).unwrap(), req);
//!
//! let resp = Response::Ack { job: 3 };
//! assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
//! ```

use crate::json::{Json, JsonError};

/// The default seed every harness in this workspace uses.
const DEFAULT_SEED: u64 = 0x5eed;

/// A replayable simulation recipe as it travels on the wire: the same
/// value set `pei-bench` serializes into `.petr` captures
/// (workload/size/policy/scale/paper/seed/budget/shards), plus the
/// checked-mode flag and an optional fault plan for sanitizer tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recipe {
    /// Workload label (`atf`, `bfs`, `pr`, …), case-insensitive.
    pub workload: String,
    /// Input size (`small` | `medium` | `large`).
    pub size: String,
    /// Dispatch policy (`host` | `pim` | `la` | `bd`, or the long
    /// trace-metadata names).
    pub policy: String,
    /// Simulation effort (`quick` | `full`).
    pub scale: String,
    /// Paper-scale machine instead of the scaled default.
    pub paper: bool,
    /// Workload seed.
    pub seed: u64,
    /// Overrides the scale's PEI budget when set.
    pub budget: Option<u64>,
    /// Run on the sharded engine with this many threads.
    pub shards: Option<u64>,
    /// Checked mode: sweep the invariant auditors during the run.
    pub check: bool,
    /// Deterministic fault injection: the fault plan's seed. Only
    /// meaningful together with [`fault_kinds`](Recipe::fault_kinds).
    pub fault_seed: Option<u64>,
    /// Fault kinds to arm, by their `pei-system` labels (tests only;
    /// empty in every real submission).
    pub fault_kinds: Vec<String>,
}

impl Recipe {
    /// A plain unchecked recipe at quick scale with the default seed.
    pub fn new(workload: &str, size: &str, policy: &str) -> Recipe {
        Recipe {
            workload: workload.to_owned(),
            size: size.to_owned(),
            policy: policy.to_owned(),
            scale: "quick".to_owned(),
            paper: false,
            seed: DEFAULT_SEED,
            budget: None,
            shards: None,
            check: false,
            fault_seed: None,
            fault_kinds: Vec::new(),
        }
    }

    fn to_json(&self) -> Json {
        let mut m = vec![
            ("workload".to_owned(), Json::from(self.workload.as_str())),
            ("size".to_owned(), Json::from(self.size.as_str())),
            ("policy".to_owned(), Json::from(self.policy.as_str())),
            ("scale".to_owned(), Json::from(self.scale.as_str())),
            ("paper".to_owned(), Json::from(self.paper)),
            ("seed".to_owned(), Json::from(self.seed)),
        ];
        if let Some(b) = self.budget {
            m.push(("budget".to_owned(), Json::from(b)));
        }
        if let Some(n) = self.shards {
            m.push(("shards".to_owned(), Json::from(n)));
        }
        if self.check {
            m.push(("check".to_owned(), Json::from(true)));
        }
        if let Some(s) = self.fault_seed {
            m.push(("fault_seed".to_owned(), Json::from(s)));
        }
        if !self.fault_kinds.is_empty() {
            m.push((
                "fault_kinds".to_owned(),
                Json::Arr(
                    self.fault_kinds
                        .iter()
                        .map(|k| Json::from(k.as_str()))
                        .collect(),
                ),
            ));
        }
        Json::Obj(m)
    }

    fn from_json(v: &Json) -> Result<Recipe, WireError> {
        Ok(Recipe {
            workload: req_str(v, "workload")?,
            size: opt_str(v, "size")?.unwrap_or_else(|| "medium".to_owned()),
            policy: opt_str(v, "policy")?.unwrap_or_else(|| "la".to_owned()),
            scale: opt_str(v, "scale")?.unwrap_or_else(|| "quick".to_owned()),
            paper: opt_bool(v, "paper")?.unwrap_or(false),
            seed: opt_u64(v, "seed")?.unwrap_or(DEFAULT_SEED),
            budget: opt_u64(v, "budget")?,
            shards: opt_u64(v, "shards")?,
            check: opt_bool(v, "check")?.unwrap_or(false),
            fault_seed: opt_u64(v, "fault_seed")?,
            fault_kinds: match v.get("fault_kinds") {
                None | Some(Json::Null) => Vec::new(),
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|i| {
                        i.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| bad("`fault_kinds` items must be strings"))
                    })
                    .collect::<Result<_, _>>()?,
                Some(_) => return Err(bad("`fault_kinds` must be an array")),
            },
        })
    }
}

/// A submission's scheduling band. Bands are strict: the daemon never
/// starts a job while a higher band has one queued; *within* a band,
/// tenants share by deficit round-robin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Drained before everything else (interactive probes).
    High,
    /// The default band.
    #[default]
    Normal,
    /// Background bulk work; runs only when the other bands are empty.
    Low,
}

impl Priority {
    /// The wire spelling (`high` | `normal` | `low`).
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Inverse of [`name`](Priority::name).
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// A client-to-daemon frame.
// The submit variant's inline `Recipe` dwarfs the other variants, but
// submits dominate real traffic and boxing would put every decode
// through an extra allocation for no measured benefit.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Queue a recipe; answered by `ack`, then `progress` heartbeats,
    /// then exactly one terminal frame (`result`, `error`, or
    /// `cancelled`).
    Submit {
        /// What to run.
        recipe: Recipe,
        /// If set, also capture the run as a `.petr` event trace at
        /// this (daemon-side) path, reported back in the result frame.
        trace: Option<String>,
        /// Which tenant's fair-share queue this job joins (omitted →
        /// the `default` tenant).
        tenant: Option<String>,
        /// Scheduling band (omitted → `normal`).
        priority: Priority,
        /// Wall-clock budget in milliseconds, measured from the ack.
        /// A job past its deadline is abandoned at the next slice
        /// boundary with a terminal `deadline-exceeded` error (omitted
        /// → the daemon's `--deadline-ms` default, if any).
        deadline_ms: Option<u64>,
    },
    /// Cancel a queued or in-flight job by the id `ack` returned.
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// Ask for the daemon's scheduler/cache statistics.
    Stats,
    /// Drain in-flight jobs, answer `bye`, and close this session
    /// (in `--stdio` mode the daemon exits).
    Shutdown,
}

impl Request {
    /// Serializes this frame as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let v = match self {
            Request::Submit {
                recipe,
                trace,
                tenant,
                priority,
                deadline_ms,
            } => {
                let mut m = vec![
                    ("type".to_owned(), Json::from("submit")),
                    ("recipe".to_owned(), recipe.to_json()),
                ];
                if let Some(t) = trace {
                    m.push(("trace".to_owned(), Json::from(t.as_str())));
                }
                if let Some(t) = tenant {
                    m.push(("tenant".to_owned(), Json::from(t.as_str())));
                }
                if *priority != Priority::default() {
                    m.push(("priority".to_owned(), Json::from(priority.name())));
                }
                if let Some(d) = deadline_ms {
                    m.push(("deadline_ms".to_owned(), Json::from(*d)));
                }
                Json::Obj(m)
            }
            Request::Cancel { job } => Json::Obj(vec![
                ("type".to_owned(), Json::from("cancel")),
                ("job".to_owned(), Json::from(*job)),
            ]),
            Request::Stats => Json::Obj(vec![("type".to_owned(), Json::from("stats"))]),
            Request::Shutdown => Json::Obj(vec![("type".to_owned(), Json::from("shutdown"))]),
        };
        v.encode()
    }

    /// Parses one request line. Errors carry the byte offset for JSON
    /// syntax problems and a description for frame-shape problems.
    pub fn decode(line: &str) -> Result<Request, WireError> {
        let v = Json::parse(line)?;
        match frame_type(&v)? {
            "submit" => {
                let recipe = v
                    .get("recipe")
                    .ok_or_else(|| bad("submit frame needs a `recipe` object"))?;
                Ok(Request::Submit {
                    recipe: Recipe::from_json(recipe)?,
                    trace: opt_str(&v, "trace")?,
                    tenant: opt_str(&v, "tenant")?,
                    priority: match opt_str(&v, "priority")? {
                        None => Priority::default(),
                        Some(p) => Priority::parse(&p).ok_or_else(|| {
                            bad(format!("unknown priority `{p}` (high|normal|low)"))
                        })?,
                    },
                    deadline_ms: opt_u64(&v, "deadline_ms")?,
                })
            }
            "cancel" => Ok(Request::Cancel {
                job: req_u64(&v, "job")?,
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(bad(format!("unknown request type `{other}`"))),
        }
    }
}

/// The headline metrics of a completed run, mirroring `RunResult`'s
/// scalar fields plus the full statistics report rendered to text. The
/// stats text is the byte-identity contract's unit: it must equal the
/// one-shot binary's `--stats` section for the same recipe.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultFrame {
    /// The job this result belongs to.
    pub job: u64,
    /// Host cycles until the last workload group completed.
    pub cycles: u64,
    /// Total instructions issued by all cores.
    pub instructions: u64,
    /// Total PEIs issued.
    pub peis: u64,
    /// Fraction of PEIs dispatched to memory-side PCUs.
    pub pim_fraction: f64,
    /// Off-chip traffic in bytes, both directions.
    pub offchip_bytes: u64,
    /// Request/response link flits.
    pub offchip_flits: (u64, u64),
    /// DRAM accesses served.
    pub dram_accesses: u64,
    /// Total energy in nanojoules.
    pub energy_total_nj: f64,
    /// The full `StatsReport` rendered to text.
    pub stats: String,
    /// Daemon-side path of the captured `.petr` trace, if one was
    /// requested.
    pub trace: Option<String>,
}

/// Per-worker scheduler statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStat {
    /// Jobs this worker has finished (any terminal state).
    pub jobs: u64,
    /// Whether the worker is executing a job right now.
    pub busy: bool,
    /// Accumulated busy wall-clock, in milliseconds (divide by daemon
    /// uptime for utilization).
    pub busy_ms: u64,
}

/// Warm-fork cache statistics (see `pei_bench::service::ForkCache`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ForkCacheStat {
    /// Resident warmed snapshots.
    pub entries: u64,
    /// Resident snapshot bytes.
    pub bytes: u64,
    /// Jobs served by restoring a resident snapshot.
    pub hits: u64,
    /// Jobs that had to warm (or run cold) because no snapshot was
    /// resident for their fork key.
    pub misses: u64,
    /// Jobs whose warmup prefix was below the auto-bypass threshold, so
    /// forking was skipped as not worth the snapshot cost.
    pub bypasses: u64,
    /// Jobs ineligible for forking (fault plans, sharded engine,
    /// traced runs).
    pub ineligible: u64,
    /// Warm snapshots evicted to stay inside the byte budget. An
    /// evicted key simply misses again later — eviction never changes
    /// results.
    pub evictions: u64,
    /// Total bytes released by those evictions.
    pub evicted_bytes: u64,
    /// The configured byte budget (0 = unbounded).
    pub capacity_bytes: u64,
}

/// Per-tenant scheduler statistics (one entry per tenant ever seen,
/// sorted by name in the `stats` frame).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStat {
    /// The tenant's name (`default` for submissions that named none).
    pub tenant: String,
    /// Jobs this tenant has submitted (accepted, i.e. acked).
    pub submitted: u64,
    /// Jobs that reached a terminal frame (result, error, cancelled).
    pub completed: u64,
    /// Median queue wait of recent jobs, in milliseconds (submission
    /// ack → a worker claiming the job).
    pub wait_p50_ms: u64,
    /// 95th-percentile queue wait of recent jobs, in milliseconds.
    pub wait_p95_ms: u64,
}

/// A `stats` response: queue and worker state, job totals, and the two
/// resident caches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsFrame {
    /// Jobs queued but not yet claimed by a worker.
    pub queue_depth: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs accepted (acked) since startup. Every accepted job reaches
    /// exactly one terminal state, so after a drain
    /// `submitted == completed + failed + cancelled + deadline_exceeded
    /// + disconnect_cancelled`.
    pub submitted: u64,
    /// Jobs completed successfully since startup.
    pub completed: u64,
    /// Jobs that ended in a failure report (stall, cycle limit, check).
    pub failed: u64,
    /// Jobs cancelled by a client `cancel` frame before completing.
    pub cancelled: u64,
    /// Submissions rejected before queueing (malformed frames, unknown
    /// vocabulary, a full queue, or a draining daemon). Rejected
    /// submissions never become jobs and are outside the `submitted`
    /// partition.
    pub rejected: u64,
    /// The subset of `rejected` turned away with `kind:"queue-full"`
    /// because the queue was at `--max-queue`.
    pub queue_full: u64,
    /// Jobs abandoned at a slice boundary because their wall-clock
    /// deadline passed (terminal `kind:"deadline-exceeded"`).
    pub deadline_exceeded: u64,
    /// Jobs cancelled because their session's reader hit EOF or its
    /// writer failed (disconnect reaping).
    pub disconnect_cancelled: u64,
    /// Highest queue depth observed since startup.
    pub queue_high_water: u64,
    /// Progress heartbeats coalesced or dropped across all sessions
    /// because a writer queue was full. Ack and terminal frames are
    /// never dropped.
    pub dropped_progress: u64,
    /// Progress heartbeats coalesced or dropped on the session that
    /// answered this `stats` request (0 when the frame was not produced
    /// for a live session).
    pub session_dropped_progress: u64,
    /// Daemon uptime in milliseconds.
    pub uptime_ms: u64,
    /// One entry per worker.
    pub workers: Vec<WorkerStat>,
    /// One entry per tenant, sorted by name.
    pub tenants: Vec<TenantStat>,
    /// Entries resident in the process-wide `Arc<Graph>` input cache.
    pub graph_cache_entries: u64,
    /// Warm-fork snapshot cache counters.
    pub fork_cache: ForkCacheStat,
}

/// A daemon-to-client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The submission was queued under this job id.
    Ack {
        /// Daemon-assigned job id; all later frames reference it.
        job: u64,
    },
    /// Progress heartbeat from an in-flight job.
    Progress {
        /// The job making progress.
        job: u64,
        /// Simulated cycle the run has reached.
        cycle: u64,
    },
    /// Terminal frame of a completed job.
    Result(ResultFrame),
    /// Terminal frame of a cancelled job.
    Cancelled {
        /// The cancelled job.
        job: u64,
        /// Simulated cycle at which the run stopped (0 if it never
        /// started).
        cycle: u64,
    },
    /// A structured error: a rejected submission, a malformed frame, or
    /// the terminal frame of a job that ended in a failure report. The
    /// daemon stays up in every case.
    Error {
        /// The job the error belongs to, if it got far enough to have
        /// one.
        job: Option<u64>,
        /// Machine-readable kind (`bad-frame`, `bad-recipe`,
        /// `unknown-job`, `queue-full`, `deadline-exceeded`,
        /// `shutting-down`, `stalled`, `cycle-limit`, `check-failed`,
        /// `worker-panic`).
        kind: String,
        /// Human-readable description (for malformed frames this
        /// includes the byte offset).
        message: String,
        /// Invariant violations, for `check-failed` outcomes.
        violations: Vec<String>,
    },
    /// Answer to a `stats` request.
    Stats(StatsFrame),
    /// The daemon is closing this session.
    Bye,
}

impl Response {
    /// Serializes this frame as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let v = match self {
            Response::Ack { job } => Json::Obj(vec![
                ("type".to_owned(), Json::from("ack")),
                ("job".to_owned(), Json::from(*job)),
            ]),
            Response::Progress { job, cycle } => Json::Obj(vec![
                ("type".to_owned(), Json::from("progress")),
                ("job".to_owned(), Json::from(*job)),
                ("cycle".to_owned(), Json::from(*cycle)),
            ]),
            Response::Result(r) => {
                let mut m = vec![
                    ("type".to_owned(), Json::from("result")),
                    ("job".to_owned(), Json::from(r.job)),
                    ("cycles".to_owned(), Json::from(r.cycles)),
                    ("instructions".to_owned(), Json::from(r.instructions)),
                    ("peis".to_owned(), Json::from(r.peis)),
                    ("pim_fraction".to_owned(), Json::from(r.pim_fraction)),
                    ("offchip_bytes".to_owned(), Json::from(r.offchip_bytes)),
                    (
                        "offchip_flits".to_owned(),
                        Json::Arr(vec![
                            Json::from(r.offchip_flits.0),
                            Json::from(r.offchip_flits.1),
                        ]),
                    ),
                    ("dram_accesses".to_owned(), Json::from(r.dram_accesses)),
                    ("energy_total_nj".to_owned(), Json::from(r.energy_total_nj)),
                    ("stats".to_owned(), Json::from(r.stats.as_str())),
                ];
                if let Some(t) = &r.trace {
                    m.push(("trace".to_owned(), Json::from(t.as_str())));
                }
                Json::Obj(m)
            }
            Response::Cancelled { job, cycle } => Json::Obj(vec![
                ("type".to_owned(), Json::from("cancelled")),
                ("job".to_owned(), Json::from(*job)),
                ("cycle".to_owned(), Json::from(*cycle)),
            ]),
            Response::Error {
                job,
                kind,
                message,
                violations,
            } => {
                let mut m = vec![("type".to_owned(), Json::from("error"))];
                if let Some(j) = job {
                    m.push(("job".to_owned(), Json::from(*j)));
                }
                m.push(("kind".to_owned(), Json::from(kind.as_str())));
                m.push(("message".to_owned(), Json::from(message.as_str())));
                if !violations.is_empty() {
                    m.push((
                        "violations".to_owned(),
                        Json::Arr(violations.iter().map(|v| Json::from(v.as_str())).collect()),
                    ));
                }
                Json::Obj(m)
            }
            Response::Stats(s) => Json::Obj(vec![
                ("type".to_owned(), Json::from("stats")),
                ("queue_depth".to_owned(), Json::from(s.queue_depth)),
                ("running".to_owned(), Json::from(s.running)),
                ("submitted".to_owned(), Json::from(s.submitted)),
                ("completed".to_owned(), Json::from(s.completed)),
                ("failed".to_owned(), Json::from(s.failed)),
                ("cancelled".to_owned(), Json::from(s.cancelled)),
                ("rejected".to_owned(), Json::from(s.rejected)),
                ("queue_full".to_owned(), Json::from(s.queue_full)),
                (
                    "deadline_exceeded".to_owned(),
                    Json::from(s.deadline_exceeded),
                ),
                (
                    "disconnect_cancelled".to_owned(),
                    Json::from(s.disconnect_cancelled),
                ),
                (
                    "queue_high_water".to_owned(),
                    Json::from(s.queue_high_water),
                ),
                (
                    "dropped_progress".to_owned(),
                    Json::from(s.dropped_progress),
                ),
                (
                    "session_dropped_progress".to_owned(),
                    Json::from(s.session_dropped_progress),
                ),
                ("uptime_ms".to_owned(), Json::from(s.uptime_ms)),
                (
                    "workers".to_owned(),
                    Json::Arr(
                        s.workers
                            .iter()
                            .map(|w| {
                                Json::Obj(vec![
                                    ("jobs".to_owned(), Json::from(w.jobs)),
                                    ("busy".to_owned(), Json::from(w.busy)),
                                    ("busy_ms".to_owned(), Json::from(w.busy_ms)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "tenants".to_owned(),
                    Json::Arr(
                        s.tenants
                            .iter()
                            .map(|t| {
                                Json::Obj(vec![
                                    ("tenant".to_owned(), Json::from(t.tenant.as_str())),
                                    ("submitted".to_owned(), Json::from(t.submitted)),
                                    ("completed".to_owned(), Json::from(t.completed)),
                                    ("wait_p50_ms".to_owned(), Json::from(t.wait_p50_ms)),
                                    ("wait_p95_ms".to_owned(), Json::from(t.wait_p95_ms)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "graph_cache_entries".to_owned(),
                    Json::from(s.graph_cache_entries),
                ),
                (
                    "fork_cache".to_owned(),
                    Json::Obj(vec![
                        ("entries".to_owned(), Json::from(s.fork_cache.entries)),
                        ("bytes".to_owned(), Json::from(s.fork_cache.bytes)),
                        ("hits".to_owned(), Json::from(s.fork_cache.hits)),
                        ("misses".to_owned(), Json::from(s.fork_cache.misses)),
                        ("bypasses".to_owned(), Json::from(s.fork_cache.bypasses)),
                        ("ineligible".to_owned(), Json::from(s.fork_cache.ineligible)),
                        ("evictions".to_owned(), Json::from(s.fork_cache.evictions)),
                        (
                            "evicted_bytes".to_owned(),
                            Json::from(s.fork_cache.evicted_bytes),
                        ),
                        (
                            "capacity_bytes".to_owned(),
                            Json::from(s.fork_cache.capacity_bytes),
                        ),
                    ]),
                ),
            ]),
            Response::Bye => Json::Obj(vec![("type".to_owned(), Json::from("bye"))]),
        };
        v.encode()
    }

    /// Parses one response line.
    pub fn decode(line: &str) -> Result<Response, WireError> {
        let v = Json::parse(line)?;
        match frame_type(&v)? {
            "ack" => Ok(Response::Ack {
                job: req_u64(&v, "job")?,
            }),
            "progress" => Ok(Response::Progress {
                job: req_u64(&v, "job")?,
                cycle: req_u64(&v, "cycle")?,
            }),
            "result" => {
                let flits = v
                    .get("offchip_flits")
                    .and_then(Json::as_arr)
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| bad("result frame needs a 2-element `offchip_flits`"))?;
                Ok(Response::Result(ResultFrame {
                    job: req_u64(&v, "job")?,
                    cycles: req_u64(&v, "cycles")?,
                    instructions: req_u64(&v, "instructions")?,
                    peis: req_u64(&v, "peis")?,
                    pim_fraction: req_f64(&v, "pim_fraction")?,
                    offchip_bytes: req_u64(&v, "offchip_bytes")?,
                    offchip_flits: (
                        flits[0].as_u64().ok_or_else(|| bad("bad flit count"))?,
                        flits[1].as_u64().ok_or_else(|| bad("bad flit count"))?,
                    ),
                    dram_accesses: req_u64(&v, "dram_accesses")?,
                    energy_total_nj: req_f64(&v, "energy_total_nj")?,
                    stats: req_str(&v, "stats")?,
                    trace: opt_str(&v, "trace")?,
                }))
            }
            "cancelled" => Ok(Response::Cancelled {
                job: req_u64(&v, "job")?,
                cycle: req_u64(&v, "cycle")?,
            }),
            "error" => Ok(Response::Error {
                job: opt_u64(&v, "job")?,
                kind: req_str(&v, "kind")?,
                message: req_str(&v, "message")?,
                violations: match v.get("violations") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|i| {
                            i.as_str()
                                .map(str::to_owned)
                                .ok_or_else(|| bad("`violations` items must be strings"))
                        })
                        .collect::<Result<_, _>>()?,
                    Some(_) => return Err(bad("`violations` must be an array")),
                },
            }),
            "stats" => {
                let workers = match v.get("workers") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|w| {
                            Ok(WorkerStat {
                                jobs: req_u64(w, "jobs")?,
                                busy: req_bool(w, "busy")?,
                                busy_ms: req_u64(w, "busy_ms")?,
                            })
                        })
                        .collect::<Result<_, WireError>>()?,
                    Some(_) => return Err(bad("`workers` must be an array")),
                };
                let tenants = match v.get("tenants") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|t| {
                            Ok(TenantStat {
                                tenant: req_str(t, "tenant")?,
                                submitted: req_u64(t, "submitted")?,
                                completed: req_u64(t, "completed")?,
                                wait_p50_ms: req_u64(t, "wait_p50_ms")?,
                                wait_p95_ms: req_u64(t, "wait_p95_ms")?,
                            })
                        })
                        .collect::<Result<_, WireError>>()?,
                    Some(_) => return Err(bad("`tenants` must be an array")),
                };
                let fc = v.get("fork_cache").cloned().unwrap_or(Json::Obj(vec![]));
                Ok(Response::Stats(StatsFrame {
                    queue_depth: req_u64(&v, "queue_depth")?,
                    running: req_u64(&v, "running")?,
                    // Overload counters default to 0 so frames from
                    // daemons predating them still decode.
                    submitted: opt_u64(&v, "submitted")?.unwrap_or(0),
                    completed: req_u64(&v, "completed")?,
                    failed: req_u64(&v, "failed")?,
                    cancelled: req_u64(&v, "cancelled")?,
                    rejected: req_u64(&v, "rejected")?,
                    queue_full: opt_u64(&v, "queue_full")?.unwrap_or(0),
                    deadline_exceeded: opt_u64(&v, "deadline_exceeded")?.unwrap_or(0),
                    disconnect_cancelled: opt_u64(&v, "disconnect_cancelled")?.unwrap_or(0),
                    queue_high_water: opt_u64(&v, "queue_high_water")?.unwrap_or(0),
                    dropped_progress: opt_u64(&v, "dropped_progress")?.unwrap_or(0),
                    session_dropped_progress: opt_u64(&v, "session_dropped_progress")?.unwrap_or(0),
                    uptime_ms: req_u64(&v, "uptime_ms")?,
                    workers,
                    tenants,
                    graph_cache_entries: req_u64(&v, "graph_cache_entries")?,
                    fork_cache: ForkCacheStat {
                        entries: opt_u64(&fc, "entries")?.unwrap_or(0),
                        bytes: opt_u64(&fc, "bytes")?.unwrap_or(0),
                        hits: opt_u64(&fc, "hits")?.unwrap_or(0),
                        misses: opt_u64(&fc, "misses")?.unwrap_or(0),
                        bypasses: opt_u64(&fc, "bypasses")?.unwrap_or(0),
                        ineligible: opt_u64(&fc, "ineligible")?.unwrap_or(0),
                        evictions: opt_u64(&fc, "evictions")?.unwrap_or(0),
                        evicted_bytes: opt_u64(&fc, "evicted_bytes")?.unwrap_or(0),
                        capacity_bytes: opt_u64(&fc, "capacity_bytes")?.unwrap_or(0),
                    },
                }))
            }
            "bye" => Ok(Response::Bye),
            other => Err(bad(format!("unknown response type `{other}`"))),
        }
    }
}

/// A frame decode failure: either malformed JSON (with the byte offset)
/// or a well-formed object of the wrong shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The line is not valid JSON.
    Json(JsonError),
    /// The JSON does not describe a known frame.
    Frame(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Json(e) => write!(f, "{e}"),
            WireError::Frame(what) => write!(f, "bad frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> WireError {
        WireError::Json(e)
    }
}

fn bad(what: impl Into<String>) -> WireError {
    WireError::Frame(what.into())
}

fn frame_type(v: &Json) -> Result<&str, WireError> {
    if !matches!(v, Json::Obj(_)) {
        return Err(bad("frame must be a JSON object"));
    }
    v.get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("frame needs a string `type` member"))
}

fn req_str(v: &Json, key: &str) -> Result<String, WireError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| bad(format!("frame needs a string `{key}`")))
}

fn opt_str(v: &Json, key: &str) -> Result<Option<String>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => j
            .as_str()
            .map(|s| Some(s.to_owned()))
            .ok_or_else(|| bad(format!("`{key}` must be a string"))),
    }
}

fn req_u64(v: &Json, key: &str) -> Result<u64, WireError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("frame needs an unsigned integer `{key}`")))
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => j
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be an unsigned integer"))),
    }
}

fn req_f64(v: &Json, key: &str) -> Result<f64, WireError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(format!("frame needs a number `{key}`")))
}

fn req_bool(v: &Json, key: &str) -> Result<bool, WireError> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| bad(format!("frame needs a boolean `{key}`")))
}

fn opt_bool(v: &Json, key: &str) -> Result<Option<bool>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => j
            .as_bool()
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be a boolean"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_recipe() -> Recipe {
        Recipe {
            workload: "hj".into(),
            size: "large".into(),
            policy: "bd".into(),
            scale: "full".into(),
            paper: true,
            seed: u64::MAX - 5,
            budget: Some(1234),
            shards: Some(4),
            check: true,
            fault_seed: Some(9),
            fault_kinds: vec!["wedge-vault".into()],
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Submit {
                recipe: full_recipe(),
                trace: Some("/tmp/x.petr".into()),
                tenant: Some("team-a".into()),
                priority: Priority::High,
                deadline_ms: Some(30_000),
            },
            Request::Submit {
                recipe: Recipe::new("atf", "small", "host"),
                trace: None,
                tenant: None,
                priority: Priority::Normal,
                deadline_ms: None,
            },
            Request::Submit {
                recipe: Recipe::new("pr", "medium", "la"),
                trace: None,
                tenant: Some("bulk".into()),
                priority: Priority::Low,
                deadline_ms: Some(1),
            },
            Request::Cancel { job: 17 },
            Request::Stats,
            Request::Shutdown,
        ] {
            let line = req.encode();
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert_eq!(Request::decode(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Ack { job: 1 },
            Response::Progress { job: 1, cycle: 99 },
            Response::Result(ResultFrame {
                job: 2,
                cycles: 123456,
                instructions: 789,
                peis: 40000,
                pim_fraction: 0.1234567,
                offchip_bytes: 1 << 40,
                offchip_flits: (5, 6),
                dram_accesses: 7,
                energy_total_nj: 1.5e9,
                stats: "a.b  1\nc.d  2\n".into(),
                trace: Some("t.petr".into()),
            }),
            Response::Cancelled { job: 3, cycle: 50 },
            Response::Error {
                job: Some(4),
                kind: "check-failed".into(),
                message: "MESI violation".into(),
                violations: vec!["l3.bank0: double owner".into()],
            },
            Response::Error {
                job: None,
                kind: "bad-frame".into(),
                message: "bad JSON at byte 3: expected `:`".into(),
                violations: vec![],
            },
            Response::Stats(StatsFrame {
                queue_depth: 2,
                running: 1,
                submitted: 15,
                completed: 10,
                failed: 1,
                cancelled: 1,
                rejected: 3,
                queue_full: 2,
                deadline_exceeded: 1,
                disconnect_cancelled: 2,
                queue_high_water: 7,
                dropped_progress: 12,
                session_dropped_progress: 5,
                uptime_ms: 5000,
                workers: vec![
                    WorkerStat {
                        jobs: 6,
                        busy: true,
                        busy_ms: 4000,
                    },
                    WorkerStat {
                        jobs: 5,
                        busy: false,
                        busy_ms: 3500,
                    },
                ],
                tenants: vec![
                    TenantStat {
                        tenant: "default".into(),
                        submitted: 9,
                        completed: 8,
                        wait_p50_ms: 3,
                        wait_p95_ms: 40,
                    },
                    TenantStat {
                        tenant: "team-a".into(),
                        submitted: 4,
                        completed: 4,
                        wait_p50_ms: 0,
                        wait_p95_ms: 2,
                    },
                ],
                graph_cache_entries: 4,
                fork_cache: ForkCacheStat {
                    entries: 2,
                    bytes: 1 << 20,
                    hits: 7,
                    misses: 2,
                    bypasses: 1,
                    ineligible: 1,
                    evictions: 3,
                    evicted_bytes: 3 << 19,
                    capacity_bytes: 256 << 20,
                },
            }),
            Response::Bye,
        ] {
            let line = resp.encode();
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert_eq!(Response::decode(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn stats_text_survives_the_wire_byte_for_byte() {
        // The byte-identity contract rides on this: a StatsReport
        // rendered to text, escaped into a frame, and decoded back must
        // be unchanged.
        let stats = "cpu.0.instr          1024\nvault.10.reads   3\n\u{7}odd\n";
        let frame = Response::Result(ResultFrame {
            job: 1,
            cycles: 1,
            instructions: 1,
            peis: 0,
            pim_fraction: 0.0,
            offchip_bytes: 0,
            offchip_flits: (0, 0),
            dram_accesses: 0,
            energy_total_nj: 0.0,
            stats: stats.into(),
            trace: None,
        });
        match Response::decode(&frame.encode()).unwrap() {
            Response::Result(r) => assert_eq!(r.stats, stats),
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn recipe_defaults_fill_in() {
        let r = Request::decode(r#"{"type":"submit","recipe":{"workload":"pr"}}"#).unwrap();
        match r {
            Request::Submit {
                recipe,
                trace,
                tenant,
                priority,
                deadline_ms,
            } => {
                assert_eq!(recipe.size, "medium");
                assert_eq!(recipe.policy, "la");
                assert_eq!(recipe.scale, "quick");
                assert_eq!(recipe.seed, 0x5eed);
                assert!(!recipe.check && recipe.budget.is_none());
                assert!(trace.is_none());
                assert!(tenant.is_none());
                assert_eq!(priority, Priority::Normal);
                assert_eq!(deadline_ms, None);
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn unknown_priorities_are_rejected_and_known_ones_parse() {
        let err =
            Request::decode(r#"{"type":"submit","recipe":{"workload":"pr"},"priority":"urgent"}"#)
                .unwrap_err();
        assert!(err.to_string().contains("priority"), "{err}");
        for p in [Priority::High, Priority::Normal, Priority::Low] {
            assert_eq!(Priority::parse(p.name()), Some(p));
        }
        let r = Request::decode(
            r#"{"type":"submit","recipe":{"workload":"pr"},"tenant":"a","priority":"low"}"#,
        )
        .unwrap();
        match r {
            Request::Submit {
                tenant, priority, ..
            } => {
                assert_eq!(tenant.as_deref(), Some("a"));
                assert_eq!(priority, Priority::Low);
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn stats_frames_without_overload_counters_still_decode() {
        // Frames from a daemon predating the overload counters decode
        // with the new fields zeroed.
        let line = concat!(
            r#"{"type":"stats","queue_depth":3,"running":1,"completed":4,"#,
            r#""failed":0,"cancelled":0,"rejected":2,"uptime_ms":10,"#,
            r#""graph_cache_entries":0}"#,
        );
        match Response::decode(line).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.queue_depth, 3);
                assert_eq!(s.submitted, 0);
                assert_eq!(s.queue_full, 0);
                assert_eq!(s.deadline_exceeded, 0);
                assert_eq!(s.disconnect_cancelled, 0);
                assert_eq!(s.queue_high_water, 0);
                assert_eq!(s.dropped_progress, 0);
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn malformed_frames_are_described() {
        let err = Request::decode("{\"type\"").unwrap_err();
        assert!(err.to_string().contains("byte"), "{err}");
        let err = Request::decode(r#"{"type":"warp"}"#).unwrap_err();
        assert!(err.to_string().contains("unknown request type"), "{err}");
        let err = Request::decode(r#"{"type":"cancel"}"#).unwrap_err();
        assert!(err.to_string().contains("`job`"), "{err}");
        let err = Request::decode("[1,2]").unwrap_err();
        assert!(err.to_string().contains("object"), "{err}");
        let err = Response::decode(r#"{"type":"result","job":1}"#).unwrap_err();
        assert!(err.to_string().contains("offchip_flits"), "{err}");
    }

    #[test]
    fn float_fields_round_trip_exactly() {
        // Rust's f64 Display prints the shortest string that parses
        // back to the same bits; the wire must preserve that.
        let x = 1.0_f64 / 3.0; // needs all 17 significant digits to print
        let v = Json::parse(&Json::F64(x).encode()).unwrap();
        assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits());
    }
}
