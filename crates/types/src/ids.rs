//! Identifiers for the hardware components of the simulated machine.
//!
//! Newtypes (per C-NEWTYPE) prevent, e.g., a vault index from being passed
//! where a core index is expected, which matters in a machine with 16 cores,
//! 8 cubes and 128 vaults all indexed by small integers.

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
        pub struct $name(pub u16);

        impl $name {
            /// The identifier as a plain index usable for `Vec` indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                debug_assert!(v <= u16::MAX as usize);
                $name(v as u16)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type! {
    /// A host processor core (and its private L1/L2 and host-side PCU).
    CoreId
}
id_type! {
    /// One Hybrid Memory Cube on the daisy chain.
    CubeId
}
id_type! {
    /// One vault (vertical DRAM partition) within a cube. Vault ids are
    /// *local* to their cube; pair with [`CubeId`] for a global location.
    VaultId
}
id_type! {
    /// One DRAM bank within a vault.
    BankId
}
id_type! {
    /// One bank of the shared, banked L3 cache.
    L3BankId
}

/// A global vault location: which cube, and which vault inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VaultLoc {
    /// The cube on the chain.
    pub cube: CubeId,
    /// The vault within that cube.
    pub vault: VaultId,
}

impl VaultLoc {
    /// Flattens the location into a dense index given the machine's
    /// vaults-per-cube count (useful for `Vec`-of-vaults storage).
    #[inline]
    pub fn flat_index(self, vaults_per_cube: usize) -> usize {
        self.cube.index() * vaults_per_cube + self.vault.index()
    }
}

impl std::fmt::Display for VaultLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cube{}/vault{}", self.cube.0, self.vault.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_indexable() {
        let a = CoreId(3);
        let b = CoreId(7);
        assert!(a < b);
        assert_eq!(a.index(), 3);
        assert_eq!(CoreId::from(5usize), CoreId(5));
    }

    #[test]
    fn vault_loc_flattens_densely() {
        let mut seen = std::collections::HashSet::new();
        for cube in 0..8 {
            for vault in 0..16 {
                let loc = VaultLoc {
                    cube: CubeId(cube),
                    vault: VaultId(vault),
                };
                assert!(seen.insert(loc.flat_index(16)));
            }
        }
        assert_eq!(seen.len(), 128);
        assert_eq!(seen.iter().max(), Some(&127));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(CoreId(2).to_string(), "CoreId(2)");
        assert_eq!(
            VaultLoc {
                cube: CubeId(1),
                vault: VaultId(9)
            }
            .to_string(),
            "cube1/vault9"
        );
    }
}
