//! Memory-request descriptors shared by the cache hierarchy and the HMC.

use crate::{BlockAddr, CoreId};

/// A unique identifier for an in-flight memory transaction.
///
/// Request ids are allocated by the issuing component and threaded through
/// responses so out-of-order completion (MSHRs, FR-FCFS reordering) can be
/// matched back to the original request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ReqId(pub u64);

impl std::fmt::Display for ReqId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Namespace tags carried in the top byte of a [`ReqId`], letting the
/// system route completions back to the issuing component class.
pub mod ns {
    /// Issued by a core's load/store stream.
    pub const CORE: u8 = 1;
    /// Issued by a host-side PCU (shares the core's L1 port).
    pub const HOST_PCU: u8 = 2;
    /// Issued by an L3 bank (fills/writebacks).
    pub const L3: u8 = 3;
    /// Issued by the PMU (flushes, PIM commands).
    pub const PMU: u8 = 4;
    /// Issued by a memory-side PCU (its DRAM accesses).
    pub const MEM_PCU: u8 = 5;
}

impl ReqId {
    /// Builds a namespaced id: top 8 bits namespace, next 16 bits owner
    /// index, low 40 bits a per-owner counter.
    #[inline]
    pub fn tagged(namespace: u8, owner: u16, local: u64) -> ReqId {
        debug_assert!(local < (1 << 40), "local id overflow");
        ReqId(((namespace as u64) << 56) | ((owner as u64) << 40) | local)
    }

    /// The namespace tag.
    #[inline]
    pub fn namespace(self) -> u8 {
        (self.0 >> 56) as u8
    }

    /// The owner index within the namespace.
    #[inline]
    pub fn owner(self) -> u16 {
        (self.0 >> 40) as u16
    }

    /// The per-owner counter.
    #[inline]
    pub fn local(self) -> u64 {
        self.0 & ((1 << 40) - 1)
    }
}

/// What a memory request wants done with its target block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read the block with shared permission (a load, `GetS`).
    Read,
    /// Read the block with exclusive/modify permission (a store or a writer
    /// PEI executed at the host, `GetM`).
    Write,
    /// Write a dirty victim block back to the next level (`PutM`). Carries
    /// no response in the common case.
    Writeback,
}

impl AccessKind {
    /// Whether this access needs exclusive permission.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Writeback)
    }
}

/// A block-granular memory request as it travels down the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReq {
    /// Transaction id, unique among in-flight requests of the issuer.
    pub id: ReqId,
    /// The single cache block this request touches.
    pub block: BlockAddr,
    /// Read, write, or writeback.
    pub kind: AccessKind,
    /// The core on whose behalf the request was issued (used for directory
    /// presence tracking and for routing responses).
    pub core: CoreId,
}

impl MemReq {
    /// Creates a new request. Plain constructor; no validation is needed
    /// because all field types are already self-validating.
    pub fn new(id: ReqId, block: BlockAddr, kind: AccessKind, core: CoreId) -> Self {
        MemReq {
            id,
            block,
            kind,
            core,
        }
    }
}

impl std::fmt::Display for MemReq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {:?} {} from {}",
            self.id, self.kind, self.block, self.core
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_write_classification() {
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(AccessKind::Writeback.is_write());
    }

    #[test]
    fn tagged_ids_round_trip() {
        let id = ReqId::tagged(ns::L3, 7, 123_456);
        assert_eq!(id.namespace(), ns::L3);
        assert_eq!(id.owner(), 7);
        assert_eq!(id.local(), 123_456);
        // Distinct namespaces never collide even with equal locals.
        assert_ne!(ReqId::tagged(ns::CORE, 0, 5), ReqId::tagged(ns::PMU, 0, 5));
    }

    #[test]
    fn memreq_display_mentions_all_parts() {
        let r = MemReq::new(ReqId(7), BlockAddr(0x10), AccessKind::Read, CoreId(3));
        let s = r.to_string();
        assert!(s.contains("req#7"));
        assert!(s.contains("blk:0x10"));
        assert!(s.contains("CoreId(3)"));
    }
}
