//! Property-based tests of the shared vocabulary types.

use pei_types::packet::flits_for;
use pei_types::{mem::ns, Addr, BlockAddr, OperandValue, PacketKind, ReqId, BLOCK_BYTES};
use proptest::prelude::*;

proptest! {
    #[test]
    fn block_round_trip_contains_address(raw in any::<u64>()) {
        let a = Addr(raw);
        let b = a.block();
        prop_assert!(b.contains(a));
        prop_assert!(b.base().0 <= raw);
        prop_assert!(raw - b.base().0 < BLOCK_BYTES as u64);
        prop_assert_eq!(a.block_offset() as u64, raw - b.base().0);
    }

    #[test]
    fn xor_fold_in_range_and_equal_blocks_collide(raw in any::<u64>(), bits in 1u32..=40) {
        let f = BlockAddr(raw).xor_fold(bits);
        prop_assert!(f < (1u64 << bits));
        // Determinism / no false negatives: equal inputs equal outputs.
        prop_assert_eq!(f, BlockAddr(raw).xor_fold(bits));
    }

    #[test]
    fn reqid_tag_round_trips(nsv in 0u8..=255, owner in any::<u16>(), local in 0u64..(1 << 40)) {
        let id = ReqId::tagged(nsv, owner, local);
        prop_assert_eq!(id.namespace(), nsv);
        prop_assert_eq!(id.owner(), owner);
        prop_assert_eq!(id.local(), local);
    }

    #[test]
    fn distinct_namespaces_never_collide(owner in any::<u16>(), local in 0u64..(1 << 40)) {
        let a = ReqId::tagged(ns::CORE, owner, local);
        let b = ReqId::tagged(ns::MEM_PCU, owner, local);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn operand_byte_len_bounded(bytes in proptest::collection::vec(any::<u8>(), 0..=64)) {
        let v = OperandValue::from_bytes(&bytes);
        prop_assert_eq!(v.byte_len(), bytes.len());
        prop_assert!(v.byte_len() <= BLOCK_BYTES);
    }

    #[test]
    fn flit_count_is_ceiling_plus_header(payload in 0usize..=256) {
        let f = flits_for(payload);
        prop_assert!(f >= 1);
        prop_assert!((f - 1) * 16 >= payload as u64 || payload == 0);
        prop_assert!((f as i64 - 2) * 16 < payload as i64);
    }

    #[test]
    fn pim_packets_monotone_in_operand_size(a in 0u16..=64, b in 0u16..=64) {
        prop_assume!(a <= b);
        let fa = PacketKind::PimReq { input_bytes: a }.flits();
        let fb = PacketKind::PimReq { input_bytes: b }.flits();
        prop_assert!(fa <= fb);
    }
}
