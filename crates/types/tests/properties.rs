//! Property-based tests of the shared vocabulary types.

use pei_types::packet::flits_for;
use pei_types::wire::{Priority, Recipe, Request, Response};
use pei_types::{mem::ns, Addr, BlockAddr, OperandValue, PacketKind, ReqId, BLOCK_BYTES};
use proptest::prelude::*;

/// A representative spread of wire frames, parameterized so the cases
/// exercise different field widths and payload shapes.
fn frame_corpus(a: u64) -> Vec<String> {
    let mut recipe = Recipe::new("atf", "small", "la");
    recipe.seed = a;
    recipe.budget = Some(a % 1_000_000);
    vec![
        Request::Submit {
            recipe,
            trace: None,
            tenant: Some(format!("tenant-{}", a % 97)),
            priority: Priority::High,
            deadline_ms: Some(a % 60_000),
        }
        .encode(),
        Request::Cancel { job: a }.encode(),
        Request::Stats.encode(),
        Request::Shutdown.encode(),
        Response::Ack { job: a }.encode(),
        Response::Progress {
            job: a,
            cycle: a.wrapping_mul(31),
        }
        .encode(),
        Response::Cancelled { job: a, cycle: a }.encode(),
        Response::Error {
            job: Some(a),
            kind: "deadline-exceeded".to_owned(),
            message: format!("job {a} exceeded its budget"),
            violations: vec!["v".repeat((a % 7) as usize)],
        }
        .encode(),
        Response::Bye.encode(),
    ]
}

proptest! {
    #[test]
    fn block_round_trip_contains_address(raw in any::<u64>()) {
        let a = Addr(raw);
        let b = a.block();
        prop_assert!(b.contains(a));
        prop_assert!(b.base().0 <= raw);
        prop_assert!(raw - b.base().0 < BLOCK_BYTES as u64);
        prop_assert_eq!(a.block_offset() as u64, raw - b.base().0);
    }

    #[test]
    fn xor_fold_in_range_and_equal_blocks_collide(raw in any::<u64>(), bits in 1u32..=40) {
        let f = BlockAddr(raw).xor_fold(bits);
        prop_assert!(f < (1u64 << bits));
        // Determinism / no false negatives: equal inputs equal outputs.
        prop_assert_eq!(f, BlockAddr(raw).xor_fold(bits));
    }

    #[test]
    fn reqid_tag_round_trips(nsv in 0u8..=255, owner in any::<u16>(), local in 0u64..(1 << 40)) {
        let id = ReqId::tagged(nsv, owner, local);
        prop_assert_eq!(id.namespace(), nsv);
        prop_assert_eq!(id.owner(), owner);
        prop_assert_eq!(id.local(), local);
    }

    #[test]
    fn distinct_namespaces_never_collide(owner in any::<u16>(), local in 0u64..(1 << 40)) {
        let a = ReqId::tagged(ns::CORE, owner, local);
        let b = ReqId::tagged(ns::MEM_PCU, owner, local);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn operand_byte_len_bounded(bytes in proptest::collection::vec(any::<u8>(), 0..=64)) {
        let v = OperandValue::from_bytes(&bytes);
        prop_assert_eq!(v.byte_len(), bytes.len());
        prop_assert!(v.byte_len() <= BLOCK_BYTES);
    }

    #[test]
    fn flit_count_is_ceiling_plus_header(payload in 0usize..=256) {
        let f = flits_for(payload);
        prop_assert!(f >= 1);
        prop_assert!((f - 1) * 16 >= payload as u64 || payload == 0);
        prop_assert!((f as i64 - 2) * 16 < payload as i64);
    }

    #[test]
    fn pim_packets_monotone_in_operand_size(a in 0u16..=64, b in 0u16..=64) {
        prop_assume!(a <= b);
        let fa = PacketKind::PimReq { input_bytes: a }.flits();
        let fb = PacketKind::PimReq { input_bytes: b }.flits();
        prop_assert!(fa <= fb);
    }

    // A frame torn at ANY interior byte boundary — the daemon sees
    // exactly this when a client's write is cut mid-frame — must decode
    // to an error, never a panic, and the error must carry the byte
    // offset at which the JSON went wrong (a torn object is always
    // malformed JSON: the cut leaves an unterminated value on one side
    // and trailing garbage on the other).
    #[test]
    fn torn_frames_error_with_a_byte_offset_at_every_cut(a in any::<u64>()) {
        for frame in frame_corpus(a) {
            prop_assert!(
                Request::decode(&frame).is_ok() || Response::decode(&frame).is_ok(),
                "whole frames decode: {frame}"
            );
            for cut in 1..frame.len() {
                prop_assume!(frame.is_char_boundary(cut));
                let (head, tail) = frame.split_at(cut);
                for torn in [head, tail] {
                    let req = Request::decode(torn)
                        .expect_err("a torn frame is never a request");
                    let resp = Response::decode(torn)
                        .expect_err("a torn frame is never a response");
                    prop_assert!(
                        req.to_string().contains("at byte"),
                        "request error names the offset: {req} (cut {cut} of {frame})"
                    );
                    prop_assert!(
                        resp.to_string().contains("at byte"),
                        "response error names the offset: {resp} (cut {cut} of {frame})"
                    );
                }
            }
        }
    }

    // Arbitrary garbage bytes (valid UTF-8 or not, after lossy
    // replacement) must never panic the decoders.
    #[test]
    fn garbage_lines_never_panic_the_decoders(bytes in proptest::collection::vec(any::<u8>(), 0..=96)) {
        let line = String::from_utf8_lossy(&bytes);
        if let Err(e) = Request::decode(&line) {
            prop_assert!(!e.to_string().is_empty());
        }
        if let Err(e) = Response::decode(&line) {
            prop_assert!(!e.to_string().is_empty());
        }
    }
}
